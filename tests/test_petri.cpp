// Petri-net substrate tests: firing rules, reachability, the stubborn-set
// closure, and the [Val88] dining-philosophers scaling claim — plus a
// property test over random conservative nets (stubborn sets preserve all
// deadlocks).
#include <gtest/gtest.h>

#include <random>

#include "src/petri/models.h"
#include "src/petri/reach.h"

namespace copar::petri {
namespace {

TEST(PetriNet, FiringMovesTokens) {
  PetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const PlaceId b = net.add_place("b", 0);
  const TransId t = net.add_transition("t", {a}, {b});
  ASSERT_TRUE(net.enabled(t, net.initial_marking()));
  const Marking m = net.fire(t, net.initial_marking());
  EXPECT_EQ(m[a], 0u);
  EXPECT_EQ(m[b], 1u);
  EXPECT_FALSE(net.enabled(t, m));
}

TEST(PetriNet, MultiplicityViaRepetition) {
  PetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const PlaceId b = net.add_place("b", 0);
  const TransId t = net.add_transition("needs2", {a, a}, {b});
  EXPECT_FALSE(net.enabled(t, net.initial_marking()));
  Marking m = net.initial_marking();
  m[a] = 2;
  EXPECT_TRUE(net.enabled(t, m));
  const Marking m2 = net.fire(t, m);
  EXPECT_EQ(m2[a], 0u);
  EXPECT_EQ(m2[b], 1u);
}

TEST(PetriNet, ConsumersProducersIndexed) {
  PetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const PlaceId b = net.add_place("b", 0);
  const TransId t1 = net.add_transition("t1", {a}, {b});
  const TransId t2 = net.add_transition("t2", {b}, {a});
  EXPECT_EQ(net.consumers(a), (std::vector<TransId>{t1}));
  EXPECT_EQ(net.producers(a), (std::vector<TransId>{t2}));
}

TEST(Reach, SequenceNet) {
  // a -> b -> c: three markings, no branching.
  PetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const PlaceId b = net.add_place("b", 0);
  const PlaceId c = net.add_place("c", 0);
  net.add_transition("t1", {a}, {b});
  net.add_transition("t2", {b}, {c});
  const ReachResult r = explore(net, {});
  EXPECT_EQ(r.num_markings, 3u);
  EXPECT_EQ(r.deadlocks.size(), 1u);
}

TEST(Reach, ForkJoinHasOneTerminal) {
  const PetriNet net = fork_join_net(3);
  const ReachResult r = explore(net, {});
  EXPECT_EQ(r.deadlocks.size(), 1u);  // the end marking
  // fork, 2^3 task subsets, join: 1 + 8 + 1
  EXPECT_EQ(r.num_markings, 10u);
}

TEST(Reach, StubbornShrinksForkJoin) {
  const PetriNet net = fork_join_net(6);
  ReachOptions stub;
  stub.stubborn = true;
  const ReachResult rs = explore(net, stub);
  const ReachResult rf = explore(net, {});
  EXPECT_EQ(rf.deadlocks, rs.deadlocks);
  EXPECT_LT(rs.num_markings, rf.num_markings);  // 2^6 interior collapses
}

TEST(Reach, IndependentProducersLinearVsExponential) {
  for (std::size_t n : {2u, 3u, 4u}) {
    const PetriNet net = independent_producers_net(n);
    const ReachResult rf = explore(net, {});
    ReachOptions stub;
    stub.stubborn = true;
    const ReachResult rs = explore(net, stub);
    // full = 5^n; stubborn = 4n + 1.
    EXPECT_EQ(rf.num_markings, static_cast<std::uint64_t>(std::pow(5.0, double(n))));
    EXPECT_EQ(rs.num_markings, 4 * n + 1);
    EXPECT_EQ(rf.deadlocks, rs.deadlocks);
  }
}

TEST(Reach, PhilosophersDeadlockPreservedAndQuadratic) {
  // The paper's §2.2 citation of [Val88]: "the state space for n dining
  // philosophers is reduced from exponential to quadratic in n".
  std::vector<std::uint64_t> full_counts;
  for (std::size_t n = 2; n <= 8; ++n) {
    const PetriNet net = dining_philosophers_net(n);
    ReachOptions stub;
    stub.stubborn = true;
    stub.cycle_proviso = false;  // deadlock preservation needs no proviso
    const ReachResult rs = explore(net, stub);
    EXPECT_EQ(rs.deadlocks.size(), 1u) << "n=" << n;  // circular wait found
    if (n >= 4) {
      // Exactly quadratic: 2n^2 - 2n + 2.
      EXPECT_EQ(rs.num_markings, 2 * n * n - 2 * n + 2) << "n=" << n;
    }
    if (n <= 6) {
      const ReachResult rf = explore(net, {});
      full_counts.push_back(rf.num_markings);
      EXPECT_EQ(rf.deadlocks, rs.deadlocks) << "n=" << n;
    }
  }
  // Full growth is exponential (ratio well above 2 per extra philosopher).
  for (std::size_t i = 1; i < full_counts.size(); ++i) {
    EXPECT_GT(full_counts[i], 2 * full_counts[i - 1]);
  }
}

TEST(Reach, CycleProvisoKeepsFullReachabilityOnCyclicNets) {
  // With the proviso, the reduced exploration of a cyclic net still visits
  // every marking class needed for terminal analysis; on the (deadlocking)
  // philosophers net the deadlock remains reachable.
  const PetriNet net = dining_philosophers_net(3);
  ReachOptions stub;
  stub.stubborn = true;
  stub.cycle_proviso = true;
  const ReachResult rs = explore(net, stub);
  EXPECT_EQ(rs.deadlocks.size(), 1u);
}

TEST(Reach, TruncationFlag) {
  const PetriNet net = dining_philosophers_net(5);
  ReachOptions opts;
  opts.max_markings = 10;
  const ReachResult r = explore(net, opts);
  EXPECT_TRUE(r.truncated);
}

// Property: on random conservative nets (|pre| == |post| keeps the total
// token count constant, hence a finite state space), stubborn-set
// exploration preserves the exact set of dead markings.
class RandomNets : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNets, StubbornPreservesDeadlocks) {
  std::mt19937_64 rng(GetParam());
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  PetriNet net;
  const int nplaces = pick(3, 7);
  for (int p = 0; p < nplaces; ++p) {
    net.add_place("p" + std::to_string(p), static_cast<std::uint32_t>(pick(0, 2)));
  }
  const int ntrans = pick(3, 8);
  for (int t = 0; t < ntrans; ++t) {
    const int arity = pick(1, 2);
    std::vector<PlaceId> pre;
    std::vector<PlaceId> post;
    for (int k = 0; k < arity; ++k) {
      pre.push_back(static_cast<PlaceId>(pick(0, nplaces - 1)));
      post.push_back(static_cast<PlaceId>(pick(0, nplaces - 1)));
    }
    net.add_transition("t" + std::to_string(t), std::move(pre), std::move(post));
  }

  const ReachResult rf = explore(net, {});
  ASSERT_FALSE(rf.truncated);
  for (const bool proviso : {false, true}) {
    ReachOptions stub;
    stub.stubborn = true;
    stub.cycle_proviso = proviso;
    const ReachResult rs = explore(net, stub);
    EXPECT_EQ(rf.deadlocks, rs.deadlocks) << "proviso=" << proviso;
    EXPECT_LE(rs.num_markings, rf.num_markings);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNets, ::testing::Range<std::uint64_t>(1, 60));

}  // namespace
}  // namespace copar::petri
