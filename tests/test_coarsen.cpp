// Virtual coarsening (Definition 4 / Observation 5): combining actions with
// at most one critical reference must preserve result configurations while
// shrinking the explored space further.
#include <gtest/gtest.h>

#include "src/explore/explorer.h"
#include "src/sem/program.h"

namespace copar::explore {
namespace {

struct Results {
  ExploreResult full;
  ExploreResult coarse;
  ExploreResult stubborn_coarse;
};

Results run_all(std::string_view src) {
  static std::vector<std::unique_ptr<CompiledProgram>> alive;
  alive.push_back(compile(src));
  const sem::LoweredProgram& prog = *alive.back()->lowered;
  ExploreOptions full_opts;
  ExploreOptions coarse_opts;
  coarse_opts.coarsen = true;
  ExploreOptions both_opts;
  both_opts.coarsen = true;
  both_opts.reduction = Reduction::Stubborn;
  return Results{explore(prog, full_opts), explore(prog, coarse_opts),
                 explore(prog, both_opts)};
}

void expect_same_terminals(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.terminal_keys(), b.terminal_keys());
  EXPECT_EQ(a.deadlock_found, b.deadlock_found);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(Coarsen, LocalRunsCollapse) {
  const Results r = run_all(R"(
    var x; var a;
    fun main() {
      var t1; var t2;
      cobegin
        { t1 = 1; t1 = t1 + 1; t1 = t1 * 2; x = t1; }
      ||
        { t2 = 5; a = x; t2 = t2 + 1; }
      coend;
    }
  )");
  expect_same_terminals(r.full, r.coarse);
  expect_same_terminals(r.full, r.stubborn_coarse);
  EXPECT_LT(r.coarse.num_configs, r.full.num_configs);
  EXPECT_LE(r.stubborn_coarse.num_configs, r.coarse.num_configs);
  EXPECT_GT(r.coarse.stats.get("coarsened_micro_actions"), 0u);
}

TEST(Coarsen, RacingOutcomesPreserved) {
  const Results r = run_all(R"(
    var x;
    fun main() {
      var t1; var t2;
      cobegin
        { t1 = x; x = t1 + 1; }
      ||
        { t2 = x; x = t2 + 1; }
      coend;
    }
  )");
  expect_same_terminals(r.full, r.coarse);
  EXPECT_EQ(r.coarse.terminal_int_values("x"), (std::set<std::int64_t>{1, 2}));
}

TEST(Coarsen, SharedLocalsAreCritical) {
  // t is a local of main but both branches access it: it must be treated as
  // critical, so the interleavings over t survive coarsening.
  const Results r = run_all(R"(
    var r1;
    fun main() {
      var t;
      cobegin { t = 1; } || { t = 2; } coend;
      r1 = t;
    }
  )");
  expect_same_terminals(r.full, r.coarse);
  EXPECT_EQ(r.coarse.terminal_int_values("r1"), (std::set<std::int64_t>{1, 2}));
}

TEST(Coarsen, SequentialProgramCollapsesToFewSteps) {
  const Results r = run_all(R"(
    var x;
    fun main() { x = 1; x = 2; x = 3; x = 4; x = 5; }
  )");
  // No concurrency at all: nothing is critical, the whole program is a
  // handful of macro steps.
  expect_same_terminals(r.full, r.coarse);
  EXPECT_LE(r.coarse.num_configs, 3u);
}

TEST(Coarsen, LockedSectionsPreserved) {
  const Results r = run_all(R"(
    var m; var x;
    fun main() {
      var t1; var t2;
      cobegin
        { lock(m); t1 = x; x = t1 + 1; unlock(m); }
      ||
        { lock(m); t2 = x; x = t2 + 1; unlock(m); }
      coend;
    }
  )");
  expect_same_terminals(r.full, r.coarse);
  expect_same_terminals(r.full, r.stubborn_coarse);
  EXPECT_EQ(r.stubborn_coarse.terminal_int_values("x"), (std::set<std::int64_t>{2}));
}

TEST(Coarsen, AssertOutcomesPreserved) {
  const Results r = run_all(R"(
    var x;
    fun main() {
      cobegin { x = 1; } || { sA: assert(x == 1); } coend;
    }
  )");
  expect_same_terminals(r.full, r.coarse);
  EXPECT_EQ(r.coarse.violations.size(), 1u);
}

TEST(Coarsen, CallsInsideBranchesPreserved) {
  const Results r = run_all(R"(
    var x; var a;
    fun bump() { var u; u = 3; x = x + u; }
    fun main() {
      cobegin { bump(); } || { a = x; } coend;
    }
  )");
  expect_same_terminals(r.full, r.coarse);
  EXPECT_EQ(r.coarse.terminal_int_values("a"), (std::set<std::int64_t>{0, 3}));
}

}  // namespace
}  // namespace copar::explore
