// Application tests (§7): Shasha–Snir delays (Fig. 2), further
// parallelization (Example 15 / Fig. 8), memory placement (b1/b2),
// deallocation lists, and parallel-safe constant propagation.
#include <gtest/gtest.h>

#include "src/analysis/common.h"
#include "src/apps/constprop.h"
#include "src/apps/dealloc.h"
#include "src/apps/parallelize.h"
#include "src/apps/placement.h"
#include "src/apps/shasha_snir.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace copar::apps {
namespace {

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

absem::AbsResult<absdom::FlatInt> abs_run(const CompiledProgram& p) {
  return absem::AbsExplorer<absdom::FlatInt>(*p.lowered, absem::AbsOptions{}).run();
}

std::uint32_t sid(const CompiledProgram& p, std::string_view label) {
  auto id = analysis::labeled_stmt(*p.lowered, label);
  EXPECT_TRUE(id.has_value()) << "no label " << label;
  return id.value_or(0);
}

TEST(ShashaSnir, Fig2NeedsDelaysInBothSegments) {
  const auto& p = compiled(workload::fig2_shasha_snir());
  const auto abs = abs_run(p);
  const DelayAnalysis d = analyze_delays(*p.lowered, abs);
  ASSERT_EQ(d.segments.size(), 2u);
  // The classic result: both (s1,s2) and (s3,s4) orders must be enforced —
  // relaxing either admits the outcome (a,b) = (0,0).
  EXPECT_TRUE(d.delays.contains(DelayPair{sid(p, "s1"), sid(p, "s2")}));
  EXPECT_TRUE(d.delays.contains(DelayPair{sid(p, "s3"), sid(p, "s4")}));
}

TEST(ShashaSnir, IndependentSegmentsNeedNoDelays) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() {
      cobegin
        { s1: x = 1; s2: x = 2; }
      ||
        { s3: y = 1; s4: y = 2; }
      coend;
    }
  )");
  const auto abs = abs_run(p);
  const DelayAnalysis d = analyze_delays(*p.lowered, abs);
  EXPECT_TRUE(d.delays.empty());
  EXPECT_TRUE(d.conflicts.empty());
  EXPECT_TRUE(d.may_reorder(sid(p, "s1"), sid(p, "s2")));
}

TEST(ShashaSnir, ExtendsToCallsLikeExample15) {
  // Figure 8's program shape, but with the calls placed in two concurrent
  // segments: the conflicts come from the callees' side effects.
  const auto& p = compiled(R"(
    var A; var B; var u; var v;
    fun f1() { A = 1; }
    fun f2() { u = B; }
    fun f3() { B = 2; }
    fun f4() { v = A; }
    fun main() {
      cobegin
        { s1: f1(); s2: f2(); }
      ||
        { s3: f3(); s4: f4(); }
      coend;
    }
  )");
  const auto abs = abs_run(p);
  const DelayAnalysis d = analyze_delays(*p.lowered, abs);
  // Conflicts discovered through side effects: s1~s4 (A) and s2~s3 (B)
  EXPECT_TRUE(d.conflicts.contains(SegmentConflict{sid(p, "s1"), sid(p, "s4")}));
  EXPECT_TRUE(d.conflicts.contains(SegmentConflict{sid(p, "s2"), sid(p, "s3")}));
  // ... and they form a critical cycle: both program orders need delays.
  EXPECT_TRUE(d.delays.contains(DelayPair{sid(p, "s1"), sid(p, "s2")}));
  EXPECT_TRUE(d.delays.contains(DelayPair{sid(p, "s3"), sid(p, "s4")}));
}

TEST(Parallelize, Example15SchedulesTwoChains) {
  const auto& p = compiled(workload::example15_calls());
  const auto abs = abs_run(p);
  const ParallelSchedule sched =
      parallelize_labeled(*p.lowered, abs, {"s1", "s2", "s3", "s4"});
  // Dependences exactly (s1,s4) and (s2,s3).
  EXPECT_TRUE(sched.deps.conflicting(sid(p, "s1"), sid(p, "s4")));
  EXPECT_TRUE(sched.deps.conflicting(sid(p, "s2"), sid(p, "s3")));
  EXPECT_FALSE(sched.deps.conflicting(sid(p, "s1"), sid(p, "s2")));
  EXPECT_FALSE(sched.deps.conflicting(sid(p, "s3"), sid(p, "s4")));
  // Two independent chains — Figure 8's "cobegin {s1;s4} || {s2;s3} coend".
  ASSERT_EQ(sched.chains.size(), 2u);
  EXPECT_EQ(sched.chains[0], (std::vector<std::uint32_t>{sid(p, "s1"), sid(p, "s4")}));
  EXPECT_EQ(sched.chains[1], (std::vector<std::uint32_t>{sid(p, "s2"), sid(p, "s3")}));
  // Two stages: {s1,s2} then {s3,s4}.
  ASSERT_EQ(sched.stages.size(), 2u);
  EXPECT_EQ(sched.stages[0].size(), 2u);
  EXPECT_EQ(sched.stages[1].size(), 2u);
  EXPECT_TRUE(sched.independent(sid(p, "s1"), sid(p, "s2")));
  EXPECT_FALSE(sched.independent(sid(p, "s1"), sid(p, "s4")));
}

TEST(Parallelize, FullyDependentSequenceStaysSequential) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      s1: x = 1;
      s2: x = x + 1;
      s3: x = x * 2;
    }
  )");
  const auto abs = abs_run(p);
  const ParallelSchedule sched = parallelize_labeled(*p.lowered, abs, {"s1", "s2", "s3"});
  EXPECT_EQ(sched.chains.size(), 1u);
  EXPECT_EQ(sched.stages.size(), 3u);
}

TEST(Placement, B1SharedB2Local) {
  const auto& p = compiled(workload::placement_b1_b2());
  const Placement placement = place_objects(*p.lowered);
  EXPECT_EQ(placement.level_of(*p.lowered, "sB1"), MemoryLevel::Shared);
  EXPECT_EQ(placement.level_of(*p.lowered, "sB2"), MemoryLevel::ThreadLocal);
}

TEST(Dealloc, NonEscapingSiteFreedAtExit) {
  const auto& p = compiled(R"(
    var keep;
    fun maker() {
      var tmp;
      sLocal: tmp = alloc(2);
      *tmp = 1;
      sKept: keep = alloc(1);
    }
    fun main() { maker(); }
  )");
  const analysis::Lifetimes lt = analysis::analyze_lifetimes(*p.lowered);
  const DeallocLists dl = dealloc_lists(*p.lowered, lt);
  const std::uint32_t maker = p.module->find_function("maker")->index();
  EXPECT_TRUE(dl.freeable_at(maker, sid(p, "sLocal")));
  EXPECT_FALSE(dl.freeable_at(maker, sid(p, "sKept")));
}

TEST(ConstProp, SequentialConstantFound) {
  const auto& p = compiled(R"(
    var x;
    fun main() { x = 4; sQ: skip; }
  )");
  const Constants c = analyze_constants(*p.lowered);
  EXPECT_EQ(c.global_at("sQ", "x"), 4);
}

TEST(ConstProp, RacingWriteDefeatsConstant) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      x = 4;
      cobegin { x = 5; } || { sQ: skip; } coend;
    }
  )");
  const Constants c = analyze_constants(*p.lowered);
  // At sQ, x may be 4 or 5 — not a constant; folding 4 would be the classic
  // parallel-unsafe optimization.
  EXPECT_EQ(c.global_at("sQ", "x"), std::nullopt);
}

TEST(ConstProp, BusyWaitExitReachable) {
  // The §1 motivating example: the loop exit IS reachable because the
  // sibling thread sets the flag — a sequential analyzer would conclude
  // otherwise and miscompile.
  const auto& p = compiled(workload::busy_wait_flag());
  const Constants c = analyze_constants(*p.lowered);
  EXPECT_TRUE(c.reachable("sAfter"));
  // And after the wait, s is known to be 1.
  EXPECT_EQ(c.global_at("sAfter", "s"), 1);
}

TEST(ConstProp, SequentialSpinWouldBeDead) {
  // The same loop without the setter thread: the exit is unreachable —
  // what a (correct) sequential analysis of one thread in isolation sees.
  const auto& p = compiled(R"(
    var s; var r;
    fun main() {
      while (s == 0) { skip; }
      sAfter: r = 1;
    }
  )");
  const Constants c = analyze_constants(*p.lowered);
  EXPECT_FALSE(c.reachable("sAfter"));
}

}  // namespace
}  // namespace copar::apps

// NOTE: appended tests for the source-to-source transformer.
#include "src/apps/transform.h"
#include "src/lang/printer.h"

namespace copar::apps {
namespace {

TEST(Transform, Example15RewritesToEquivalentParallelProgram) {
  const std::string original = workload::example15_calls();
  const auto& p = compiled(original);
  const auto abs = abs_run(p);
  const ParallelSchedule sched =
      parallelize_labeled(*p.lowered, abs, {"s1", "s2", "s3", "s4"});
  const std::string transformed = rewrite_as_parallel_chains(*p.lowered, sched);
  EXPECT_NE(transformed.find("cobegin"), std::string::npos);
  EXPECT_NE(transformed.find("coend"), std::string::npos);
  // The paper's claim, machine-checked: the parallel version has exactly
  // the same observable outcomes.
  EXPECT_TRUE(observably_equivalent(original, transformed)) << transformed;
}

TEST(Transform, WrongScheduleIsCaughtByEquivalenceCheck) {
  // Force-parallelizing dependent statements changes the outcomes; the
  // equivalence oracle must reject it.
  const std::string original = R"(
    var x; var y;
    fun main() {
      s1: x = 1;
      s2: y = x;
    }
  )";
  const auto& p = compiled(original);
  const auto abs = abs_run(p);
  ParallelSchedule bogus;
  bogus.ordered = {sid(p, "s1"), sid(p, "s2")};
  bogus.chains = {{sid(p, "s1")}, {sid(p, "s2")}};  // deliberately wrong
  const std::string transformed = rewrite_as_parallel_chains(*p.lowered, bogus);
  EXPECT_FALSE(observably_equivalent(original, transformed)) << transformed;
}

TEST(Transform, SurroundingStatementsPreserved) {
  const auto& p = compiled(R"(
    var A; var B; var pre; var post;
    fun fa() { A = 1; }
    fun fb() { B = 2; }
    fun main() {
      pre = 10;
      s1: fa();
      s2: fb();
      post = 20;
    }
  )");
  const auto abs = abs_run(p);
  const ParallelSchedule sched = parallelize_labeled(*p.lowered, abs, {"s1", "s2"});
  ASSERT_EQ(sched.chains.size(), 2u);  // independent calls
  const std::string transformed = rewrite_as_parallel_chains(*p.lowered, sched);
  EXPECT_NE(transformed.find("pre = 10"), std::string::npos);
  EXPECT_NE(transformed.find("post = 20"), std::string::npos);
  EXPECT_TRUE(observably_equivalent(lang::print(*p.module), transformed)) << transformed;
}

}  // namespace
}  // namespace copar::apps
