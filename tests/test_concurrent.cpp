// Thread-safety stress tests for the exploration core's concurrent pieces:
// the sharded visited set (FingerprintTable growth/rehash under concurrent
// insert) and the work-stealing frontier (steal/termination protocol).
//
// The suite name carries the ParExplore prefix so the CI ThreadSanitizer
// job (`ctest -R 'ParExplore'`) picks these up; under TSan the data-race
// detection is the point, the assertions are the sanity floor.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/explore/explorer.h"
#include "src/explore/frontier.h"
#include "src/explore/visited.h"
#include "src/sem/config.h"
#include "src/sem/program.h"
#include "src/sem/step.h"
#include "src/support/fingerprint.h"
#include "src/support/telemetry.h"
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"

namespace copar::explore {
namespace {

support::Fingerprint fp_of(std::uint64_t i) {
  // Distinct, never the table's reserved empty/tombstone markers.
  support::Fingerprint fp;
  fp.hi = i * 0x9e3779b97f4a7c15ULL + 1;
  fp.lo = i;
  return fp;
}

TEST(ParExploreStress, ShardedVisitedSetConcurrentInsertGrowsTables) {
  // 4 threads × 8k keys with heavy overlap: every in-shard FingerprintTable
  // rehashes several times while other threads insert into it. Exactly one
  // thread must win each key.
  const auto prog = compile(workload::fig2_shasha_snir());
  const sem::Configuration cfg = sem::Configuration::initial(*prog->lowered);

  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kKeys = 8192;
  ShardedVisitedSet seen(/*exact_keys=*/false, /*track_sleep=*/true);
  std::atomic<std::uint64_t> fresh{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the full key range from a different start, so
      // most inserts race with another thread on the same shard.
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t k = (i + t * (kKeys / kThreads)) % kKeys;
        if (seen.insert(cfg, fp_of(k), /*sleep=*/k)) fresh.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(fresh.load(), kKeys);
  EXPECT_EQ(seen.size(), kKeys);
  EXPECT_GT(seen.memory_bytes(), kKeys * 16);

  // The stored sleep masks survived the rehashes and narrow atomically.
  const auto n = seen.narrow_sleep(fp_of(7), /*arrival=*/0x1);
  EXPECT_EQ(n.wake, 0x6u);
  EXPECT_EQ(n.remaining, 0x1u);
  const auto again = seen.narrow_sleep(fp_of(7), /*arrival=*/0);
  EXPECT_EQ(again.wake, 0x1u);
  EXPECT_EQ(again.remaining, 0u);
}

TEST(ParExploreStress, WorkStealingFrontierDrainsEverything) {
  // A producer-consumer storm: every popped item < kFanoutLimit pushes two
  // children. All items must be seen exactly once and the pool must
  // terminate (no lost wakeups, no double-claims).
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kFanoutLimit = 2000;
  WorkStealingFrontier<std::uint64_t> frontier(kThreads);
  std::atomic<std::uint64_t> popped{0};
  frontier.push(0, 1);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (auto item = frontier.pop(t)) {
        popped.fetch_add(1);
        const std::uint64_t v = *item;
        if (v < kFanoutLimit) {
          frontier.push(t, 2 * v);
          frontier.push(t, 2 * v + 1);
        }
        frontier.done(t);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // The implicit binary tree rooted at 1 with internal nodes < kFanoutLimit:
  // count it directly.
  std::uint64_t expect = 0;
  std::vector<std::uint64_t> stack{1};
  while (!stack.empty()) {
    const std::uint64_t v = stack.back();
    stack.pop_back();
    expect += 1;
    if (v < kFanoutLimit) {
      stack.push_back(2 * v);
      stack.push_back(2 * v + 1);
    }
  }
  EXPECT_EQ(popped.load(), expect);

  std::uint64_t steals = 0;
  std::uint64_t stolen = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    steals += frontier.counters(t).steals;
    stolen += frontier.counters(t).stolen_items;
  }
  EXPECT_GE(stolen, steals);  // a steal moves at least one item
}

TEST(ParExploreStress, WorkStealingFrontierAbortWakesSleepers) {
  // Workers blocked on an empty pool (one worker keeps the pool non-done by
  // never finishing its item) must all return once abort() fires.
  constexpr unsigned kThreads = 4;
  WorkStealingFrontier<int> frontier(kThreads);
  frontier.push(0, 42);

  std::atomic<unsigned> exited{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (auto item = frontier.pop(t)) {
        // Hold the only item active; everyone else blocks idle. Then abort.
        frontier.abort();
        frontier.done(t);
      }
      exited.fetch_add(1);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(exited.load(), kThreads);
}

TEST(ParExploreStress, CowSharedParentSurvivesConcurrentChildren) {
  // The copy-on-write contract under contention: N threads each repeatedly
  // shallow-copy ONE shared parent configuration and walk divergent action
  // paths from it. Every write goes through Store::mutate / ProcessTable::
  // mutate / CowBox::mut while the other threads hold (and read) the same
  // handles, so under TSan this drives the clone-on-write decision and the
  // shared_ptr refcounts across real thread interleavings. Functionally the
  // parent must stay byte-identical — a child that ever wrote through a
  // shared handle would corrupt it.
  const auto prog = compile(workload::fig2_shasha_snir());
  sem::Configuration parent = sem::Configuration::initial(*prog->lowered);
  // Advance deterministically until at least two actions are enabled, so the
  // children below genuinely diverge.
  for (int guard = 0; guard < 1000; ++guard) {
    const auto infos = sem::all_action_infos(parent);
    std::vector<const sem::ActionInfo*> enabled;
    for (const auto& i : infos) {
      if (i.exists && i.enabled) enabled.push_back(&i);
    }
    ASSERT_FALSE(enabled.empty());
    if (enabled.size() >= 2) break;
    parent = sem::apply_action(parent, *enabled.front());
  }
  const std::string before = parent.canonical_key();

  constexpr unsigned kThreads = 4;
  constexpr int kRounds = 200;
  constexpr int kDepth = 8;
  std::atomic<std::uint64_t> steps{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        sem::Configuration cur = parent;  // shallow: shares every handle
        for (int d = 0; d < kDepth; ++d) {
          const auto infos = sem::all_action_infos(cur);
          std::vector<const sem::ActionInfo*> enabled;
          for (const auto& i : infos) {
            if (i.exists && i.enabled) enabled.push_back(&i);
          }
          if (enabled.empty()) break;
          // Different threads/rounds pick different branches, so clones of
          // the same parent handle race with reads of it on other threads.
          const auto& pick = *enabled[(t + r + d) % enabled.size()];
          cur = sem::apply_action(cur, pick);
          steps.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_GT(steps.load(), kThreads * kRounds);
  EXPECT_EQ(parent.canonical_key(), before)
      << "a concurrent child mutated the shared parent in place";
}

TEST(ParExploreStress, ParallelExploreRecordsOneTrackPerWorker) {
  // Full engine run with trace + sampler live: under TSan this exercises
  // the per-worker trace rings, the live-gauge atomics, and the sampler
  // thread against real worker interleavings. Functionally it pins the
  // per-worker track contract: every worker registers exactly one
  // telemetry track named workerN.
  auto& tel = telemetry::Telemetry::global();
  tel.reset();
  tel.enable_metrics(true);
  tel.enable_trace(1 << 14);
  tel.start_sampler(1.0);  // 1ms: samples race with worker gauge writes

  const auto prog = compile(workload::dining_philosophers(3));
  ExploreOptions opts;
  opts.threads = 4;
  const auto r = explore(*prog->lowered, opts);
  EXPECT_GT(r.num_configs, 0u);

  tel.stop_sampler();
  // stop_sampler takes a final sample, so even a fast run has a timeline.
  EXPECT_FALSE(tel.timeline().empty());

  std::set<std::string> names;
  for (const auto& track : tel.tracks()) names.insert(track.name);
  for (unsigned i = 0; i < opts.threads; ++i) {
    EXPECT_TRUE(names.contains("worker" + std::to_string(i)))
        << "missing telemetry track worker" << i;
  }
  // The sampler registered its own track too — it must not masquerade as
  // a worker.
  EXPECT_TRUE(names.contains("sampler"));

  tel.enable_trace(0);
  tel.enable_metrics(false);
  tel.reset();
}

}  // namespace
}  // namespace copar::explore
