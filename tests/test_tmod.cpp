// The thread-modular rely/guarantee engine (src/absem/tmod) and its
// integration into the check battery (check --tier=tmod).
//
// The load-bearing property is soundness inclusion: tmod never enumerates
// interleavings, so everything the concrete explorer can observe must be
// covered by a tmod alarm — races, failing assertions, runtime faults.
// The TmodAgreement tests check it differentially over every shipped
// sample, in both instantiated domains (intervals and flat constants), and
// additionally pin that a tmod race candidate *refuted* by an exhaustive
// directed search never reappears as a concrete explorer race.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absem/tmod.h"
#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/check/check.h"
#include "src/explore/explorer.h"
#include "src/explore/witness.h"
#include "src/lang/ast.h"
#include "src/sem/program.h"
#include "src/sem/step.h"
#include "src/support/diagnostics.h"

namespace copar {
namespace {

using StmtPair = std::pair<std::uint32_t, std::uint32_t>;

bool is_sync_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id) {
  const lang::Stmt* s = prog.stmt(stmt_id);
  return s != nullptr &&
         (s->kind() == lang::StmtKind::Lock || s->kind() == lang::StmtKind::Unlock);
}

StmtPair norm(std::uint32_t a, std::uint32_t b) {
  return {std::min(a, b), std::max(a, b)};
}

template <absem::NumDomain N>
std::set<StmtPair> tmod_race_pairs(const absem::TmodResult<N>& r) {
  std::set<StmtPair> out;
  for (const absem::TmodRace& c : r.races.races) out.insert(norm(c.stmt1, c.stmt2));
  return out;
}

/// Co-enabledness predicate for the directed refutation searches (the same
/// query check.cpp uses for its confirm/refute pass).
std::function<bool(const sem::Configuration&)> race_reach(std::uint32_t s1,
                                                          std::uint32_t s2) {
  return [s1, s2](const sem::Configuration& cfg) {
    int n1 = 0;
    int n2 = 0;
    for (const sem::ActionInfo& info : sem::all_action_infos(cfg)) {
      if (!info.enabled || info.stmt_id == sem::kNoStmt) continue;
      if (info.stmt_id == s1) ++n1;
      if (info.stmt_id == s2) ++n2;
    }
    return s1 == s2 ? n1 >= 2 : (n1 >= 1 && n2 >= 1);
  };
}

// --- engine basics ---------------------------------------------------------

constexpr std::string_view kRacyCounter = R"(
    var count = 0;
    fun main() {
      var t1; var t2;
      cobegin
        { sA1: t1 = count; sA2: count = t1 + 1; }
      ||
        { sB1: t2 = count; sB2: count = t2 + 1; }
      coend;
      sCheck: assert(count == 2);
    }
)";

constexpr std::string_view kUnboundedSpin = R"(
    var count = 0; var stop = 0;
    fun main() {
      cobegin
        { while (stop == 0) { sInc: count = count + 1; } }
      ||
        { sStop: stop = 1; }
      coend;
      sCheck: assert(count >= 0);
    }
)";

TEST(Tmod, ConvergesAndFindsTheLostUpdate) {
  const auto prog = compile(kRacyCounter);
  const auto r = absem::tmod_analyze<absdom::Interval>(*prog->lowered);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.threads, 3u);  // main + two cobegin branches
  EXPECT_GT(r.rounds, 0u);
  EXPECT_GT(r.interference_facts, 0u);
  // Race accounting invariant.
  EXPECT_EQ(r.races.pairs_total,
            r.races.pruned_mhp + r.races.pruned_lockset + r.races.races.size());
  EXPECT_FALSE(r.races.races.empty());
  // Under interference the increments are not atomic: count == 2 is not
  // provable, so the assertion must stay a may-alarm.
  EXPECT_FALSE(r.may_fail_asserts.empty());
}

TEST(Tmod, IsDeterministic) {
  const auto prog = compile(kRacyCounter);
  const auto a = absem::tmod_analyze<absdom::Interval>(*prog->lowered);
  const auto b = absem::tmod_analyze<absdom::Interval>(*prog->lowered);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.interference_facts, b.interference_facts);
  EXPECT_EQ(a.races.races, b.races.races);
  EXPECT_EQ(a.may_fail_asserts, b.may_fail_asserts);
  EXPECT_EQ(a.accesses, b.accesses);
}

TEST(Tmod, TerminatesWhereExplorersTruncate) {
  // The acceptance program: an unbounded spin loop. Every enumerating
  // engine truncates; tmod converges and still reports soundly.
  const auto prog = compile(kUnboundedSpin);
  explore::ExploreOptions eopts;
  eopts.max_configs = 5000;
  const explore::ExploreResult conc = explore::explore(*prog->lowered, eopts);
  EXPECT_TRUE(conc.truncated);

  const auto r = absem::tmod_analyze<absdom::Interval>(*prog->lowered);
  EXPECT_FALSE(r.truncated);
  // The stop-flag handoff is the (only) race: the spin read vs sStop.
  EXPECT_FALSE(r.races.races.empty());
  // count ∈ [0, +inf] under any interference, so `count >= 0` is proven:
  // no assertion alarm on an unbounded program is the whole point.
  EXPECT_TRUE(r.may_fail_asserts.empty());
}

TEST(Tmod, LocksetHookPrunesMutuallyExclusiveSections) {
  const auto prog = compile(R"(
    var count = 0; var m = 0;
    fun main() {
      cobegin
        { lock(m); sA: count = count + 1; unlock(m); }
      ||
        { lock(m); sB: count = count + 1; unlock(m); }
      coend;
    }
  )");
  DiagnosticEngine engine;
  check::CheckOptions opts;
  opts.tier = check::Tier::Tmod;
  const check::CheckSummary sum = check::run_checks(*prog, engine, opts);
  EXPECT_TRUE(sum.tmod.ran);
  EXPECT_GT(sum.stats.pruned_lockset, 0u);
  EXPECT_EQ(sum.stats.candidates, 0u);
  EXPECT_EQ(sum.stats.configs_explored, 0u);
}

TEST(CheckTmod, PureTierNeverExplores) {
  const auto prog = compile(kRacyCounter);
  DiagnosticEngine engine;
  check::CheckOptions opts;
  opts.tier = check::Tier::Tmod;
  opts.witnesses = false;  // the pure zero-exploration path
  const check::CheckSummary sum = check::run_checks(*prog, engine, opts);
  EXPECT_EQ(sum.tier, check::Tier::Tmod);
  EXPECT_FALSE(sum.explored);
  EXPECT_EQ(sum.stats.configs_explored, 0u);
  EXPECT_TRUE(sum.tmod.ran);
  EXPECT_GT(sum.tmod.threads, 0u);
  EXPECT_GT(sum.tmod.alarms, 0u);
  // Candidates stay "possible" without the directed searches.
  bool possible_race = false;
  for (const Diagnostic& d : engine.all()) {
    if (d.code == "race" && d.message.find("possible") != std::string::npos) {
      possible_race = true;
    }
  }
  EXPECT_TRUE(possible_race);
}

TEST(CheckTmod, DirectedSearchConfirmsRealRaces) {
  const auto prog = compile(kRacyCounter);
  DiagnosticEngine engine;
  check::CheckOptions opts;
  opts.tier = check::Tier::Tmod;
  const check::CheckSummary sum = check::run_checks(*prog, engine, opts);
  EXPECT_GT(sum.stats.confirmed, 0u);
  EXPECT_GT(sum.stats.configs_explored, 0u);
  for (const Diagnostic& d : engine.all()) {
    if (d.code != "race") continue;
    EXPECT_EQ(d.message.find("possible"), std::string::npos) << d.message;
    EXPECT_FALSE(d.notes.empty()) << "confirmed race should carry a witness";
  }
}

// --- soundness inclusion over the shipped samples --------------------------

/// Everything the concrete explorer observed on a completed exploration.
struct ConcreteFacts {
  bool completed = false;
  std::set<StmtPair> races;
  std::set<std::uint32_t> violations;
  std::set<std::pair<std::uint32_t, std::uint8_t>> faults;
};

ConcreteFacts concrete_facts(const sem::LoweredProgram& prog) {
  ConcreteFacts out;
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  opts.max_configs = 300000;
  const explore::ExploreResult res = explore::explore(prog, opts);
  if (res.truncated) return out;
  out.completed = true;
  for (const analysis::Anomaly& a : analysis::anomalies_from(res).all) {
    if (is_sync_stmt(prog, a.stmt1) && is_sync_stmt(prog, a.stmt2)) continue;
    out.races.insert(norm(a.stmt1, a.stmt2));
  }
  out.violations = res.violations;
  for (const auto& f : res.faults) out.faults.insert(f);
  return out;
}

template <absem::NumDomain N>
void expect_inclusion(const std::string& name, const sem::LoweredProgram& prog,
                      const ConcreteFacts& conc) {
  const absem::TmodResult<N> tm = absem::tmod_analyze<N>(prog);
  ASSERT_FALSE(tm.truncated) << name;
  EXPECT_EQ(tm.races.pairs_total,
            tm.races.pruned_mhp + tm.races.pruned_lockset + tm.races.races.size())
      << name;

  const std::set<StmtPair> tmod_races = tmod_race_pairs(tm);
  for (const StmtPair& p : conc.races) {
    EXPECT_TRUE(tmod_races.contains(p))
        << name << ": explorer race " << analysis::describe_stmt(prog, p.first) << " || "
        << analysis::describe_stmt(prog, p.second) << " missing from tmod alarms";
  }
  for (const std::uint32_t v : conc.violations) {
    EXPECT_TRUE(tm.may_fail_asserts.contains(v))
        << name << ": concretely failing assert " << analysis::describe_stmt(prog, v)
        << " missing from tmod may-fail set";
  }
  std::set<std::pair<std::uint32_t, std::uint8_t>> tmod_faults;
  for (const auto& [stmt, expr, fault] : tm.may_faults) tmod_faults.insert({stmt, fault});
  for (const auto& f : conc.faults) {
    EXPECT_TRUE(tmod_faults.contains(f))
        << name << ": concrete fault at " << analysis::describe_stmt(prog, f.first)
        << " missing from tmod may-faults";
  }

  // Refutation soundness: a tmod candidate killed by an *exhaustive*
  // directed search must not be a concrete race (the search and the full
  // exploration agree on reachability).
  for (const absem::TmodRace& c : tm.races.races) {
    explore::WitnessQuery q;
    q.reach_predicate = race_reach(c.stmt1, c.stmt2);
    q.explore.max_configs = 300000;
    explore::WitnessStats ws;
    const auto w = explore::find_witness(prog, q, &ws);
    if (!w.has_value() && !ws.truncated) {
      EXPECT_FALSE(conc.races.contains(norm(c.stmt1, c.stmt2)))
          << name << ": refuted tmod candidate "
          << analysis::describe_stmt(prog, c.stmt1) << " || "
          << analysis::describe_stmt(prog, c.stmt2) << " is a concrete explorer race";
    }
  }
}

TEST(TmodAgreement, AlarmsCoverExplorerFindingsOnAllSamples) {
  const std::filesystem::path dir = COPAR_SAMPLES_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cop") continue;
    const std::string name = entry.path().filename().string();
    std::ifstream in(entry.path());
    std::stringstream src;
    src << in.rdbuf();
    const auto prog = compile(src.str());
    const ConcreteFacts conc = concrete_facts(*prog->lowered);
    if (!conc.completed) continue;  // unbounded sample: nothing to compare
    ++checked;
    expect_inclusion<absdom::Interval>(name, *prog->lowered, conc);
    expect_inclusion<absdom::FlatInt>(name, *prog->lowered, conc);
  }
  EXPECT_GT(checked, 0u) << "no sample completed exploration";
}

}  // namespace
}  // namespace copar
