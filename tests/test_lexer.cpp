#include <gtest/gtest.h>

#include "src/lang/lexer.h"

namespace copar::lang {
namespace {

std::vector<Token> lex(std::string_view src, DiagnosticEngine& diags, Interner& in) {
  Lexer lexer(src, in, diags);
  return lexer.lex_all();
}

std::vector<Tok> kinds(std::string_view src) {
  DiagnosticEngine diags;
  Interner in;
  std::vector<Tok> out;
  for (const Token& t : lex(src, diags, in)) out.push_back(t.kind);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::Eof}));
}

TEST(Lexer, KeywordsAndIdentifiers) {
  EXPECT_EQ(kinds("cobegin coend x"),
            (std::vector<Tok>{Tok::KwCobegin, Tok::KwCoend, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, IntegerLiterals) {
  DiagnosticEngine diags;
  Interner in;
  auto toks = lex("0 42 123456789", diags, in);
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 123456789);
}

TEST(Lexer, IntegerOverflowReported) {
  DiagnosticEngine diags;
  Interner in;
  lex("99999999999999999999999999", diags, in);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, TwoCharOperators) {
  EXPECT_EQ(kinds("== != <= >= ||"),
            (std::vector<Tok>{Tok::EqEq, Tok::NotEq, Tok::Le, Tok::Ge, Tok::BarBar, Tok::Eof}));
}

TEST(Lexer, SingleCharOperators) {
  EXPECT_EQ(kinds("+ - * / % & = < > : ; ,"),
            (std::vector<Tok>{Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash, Tok::Percent,
                              Tok::Amp, Tok::Assign, Tok::Lt, Tok::Gt, Tok::Colon, Tok::Semi,
                              Tok::Comma, Tok::Eof}));
}

TEST(Lexer, LineCommentsSkipped) {
  EXPECT_EQ(kinds("x // comment to end\ny"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, BlockCommentsSkipped) {
  EXPECT_EQ(kinds("x /* multi \n line */ y"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, UnterminatedBlockCommentReported) {
  DiagnosticEngine diags;
  Interner in;
  lex("x /* never closed", diags, in);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  DiagnosticEngine diags;
  Interner in;
  auto toks = lex("a\n  b", diags, in);
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, StrayCharactersReportedAndSkipped) {
  DiagnosticEngine diags;
  Interner in;
  auto toks = lex("a @ b", diags, in);
  EXPECT_TRUE(diags.has_errors());
  ASSERT_EQ(toks.size(), 3u);  // a, b, eof
}

TEST(Lexer, SingleBarAndAmpAmpRejected) {
  DiagnosticEngine diags;
  Interner in;
  lex("a | b && c", diags, in);
  EXPECT_EQ(diags.error_count(), 2u);
}

TEST(Lexer, IdentifiersMayContainDigitsAndUnderscores) {
  DiagnosticEngine diags;
  Interner in;
  auto toks = lex("my_var2", diags, in);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(in.spelling(toks[0].ident), "my_var2");
}

}  // namespace
}  // namespace copar::lang
