// Abstract-exploration tests: folding modes, soundness against the concrete
// explorer, and termination on programs whose concrete state space is
// unbounded (the reason §6 exists).
#include <gtest/gtest.h>

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"

namespace copar::absem {
namespace {

using absdom::FlatInt;
using absdom::Interval;

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

template <NumDomain N = FlatInt>
AbsResult<N> abs_run(const CompiledProgram& p, Folding folding = Folding::Tree) {
  AbsOptions opts;
  opts.folding = folding;
  return AbsExplorer<N>(*p.lowered, opts).run();
}

/// Concrete co-enabled statement pairs via full exploration.
std::set<std::pair<std::uint32_t, std::uint32_t>> concrete_mhp(const CompiledProgram& p) {
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const auto r = explore::explore(*p.lowered, opts);
  std::set<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& [key, facts] : r.pairs) {
    if (facts.co_enabled) out.insert(key);
  }
  return out;
}

TEST(Absem, SequentialConstantsArePropagated) {
  const auto& p = compiled(R"(
    var x;
    fun main() { x = 2; sQ: x = x + 3; }
  )");
  const auto r = abs_run(p);
  // At the labelled statement, x is the constant 2.
  const lang::Stmt* sq = p.module->find_labeled("sQ");
  ASSERT_NE(sq, nullptr);
  // Find the point whose instruction is sQ and ask for the global x.
  std::uint32_t slot = 0;
  for (const auto& g : p.lowered->globals()) {
    if (p.module->interner().spelling(g.name) == "x") slot = g.slot;
  }
  bool found = false;
  for (const auto& [point, store] : r.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    if (instr.stmt == sq) {
      found = true;
      EXPECT_EQ(store.get(AbsLoc::global(slot)).num.as_constant(), 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Absem, RacingWriteForcesTop) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      cobegin { x = 1; } || { x = 2; } coend;
      sQ: skip;
    }
  )");
  const auto r = abs_run(p);
  std::uint32_t slot = 0;
  for (const auto& g : p.lowered->globals()) {
    if (p.module->interner().spelling(g.name) == "x") slot = g.slot;
  }
  const lang::Stmt* sq = p.module->find_labeled("sQ");
  bool found = false;
  for (const auto& [point, store] : r.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    if (instr.stmt == sq) {
      found = true;
      EXPECT_TRUE(store.get(AbsLoc::global(slot)).num.is_top());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Absem, TrueAssertNotFlagged) {
  const auto& p = compiled(R"(
    var x;
    fun main() { x = 1; sA: assert(x == 1); }
  )");
  const auto r = abs_run(p);
  EXPECT_TRUE(r.may_fail_asserts.empty());
}

TEST(Absem, RacyAssertFlagged) {
  const auto& p = compiled(R"(
    var x;
    fun main() { cobegin { x = 1; } || { sA: assert(x == 1); } coend; }
  )");
  const auto r = abs_run(p);
  EXPECT_EQ(r.may_fail_asserts.size(), 1u);
}

TEST(Absem, TerminatesOnInfiniteCounterLoop) {
  // Concretely this program has unboundedly many states (x grows forever);
  // the abstract semantics folds them and terminates — the motivation for
  // abstraction in §6.
  const auto& p = compiled(R"(
    var x;
    fun main() { while (true) { x = x + 1; } }
  )");
  const auto flat = abs_run<FlatInt>(p);
  EXPECT_FALSE(flat.truncated);
  const auto iv = abs_run<Interval>(p);
  EXPECT_FALSE(iv.truncated);
}

TEST(Absem, TerminatesOnUnboundedRecursion) {
  const auto& p = compiled(R"(
    var x;
    fun f(n) { x = x + 1; f(n + 1); }
    fun main() { f(0); }
  )");
  const auto r = abs_run(p);
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.num_states, 0u);
}

TEST(Absem, MhpOverapproximatesConcreteSimple) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() {
      cobegin { s1: x = 1; s2: x = 2; } || { s3: y = 1; s4: y = x; } coend;
    }
  )");
  const auto concrete = concrete_mhp(p);
  const auto abs = abs_run(p);
  for (const auto& pair : concrete) {
    EXPECT_TRUE(abs.mhp.contains(pair))
        << "abstract MHP lost pair (" << pair.first << "," << pair.second << ")";
  }
}

TEST(Absem, MhpOverapproximatesConcreteWithCallsAndLocks) {
  const auto& p = compiled(R"(
    var m; var x; var a;
    fun bump() { sB: x = x + 1; }
    fun main() {
      cobegin
        { lock(m); bump(); unlock(m); }
      ||
        { sR: a = x; }
      coend;
    }
  )");
  const auto concrete = concrete_mhp(p);
  const auto abs = abs_run(p);
  for (const auto& pair : concrete) {
    EXPECT_TRUE(abs.mhp.contains(pair))
        << "abstract MHP lost pair (" << pair.first << "," << pair.second << ")";
  }
}

TEST(Absem, ClanFoldingCoarserThanTree) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() {
      cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend;
      x = y;
    }
  )");
  const auto tree = abs_run(p, Folding::Tree);
  const auto clan = abs_run(p, Folding::Clan);
  // Clan folding only merges states, never invents control points, so its
  // MHP is a superset and its state count no larger.
  for (const auto& pair : tree.mhp) EXPECT_TRUE(clan.mhp.contains(pair));
  EXPECT_LE(clan.num_states, tree.num_states);
}

TEST(Absem, SideEffectsIncludeCallees) {
  const auto& p = compiled(R"(
    var g1; var g2;
    fun inner() { g2 = 1; }
    fun outer() { g1 = 1; inner(); }
    fun main() { outer(); }
  )");
  const auto r = abs_run(p);
  const std::uint32_t outer_id = p.module->find_function("outer")->index();
  auto [reads, writes] = r.effects_of(outer_id);
  std::set<std::string> written;
  for (const AbsLoc& loc : writes) written.insert(loc.to_string());
  std::uint32_t g1_slot = 0;
  std::uint32_t g2_slot = 0;
  for (const auto& g : p.lowered->globals()) {
    if (p.module->interner().spelling(g.name) == "g1") g1_slot = g.slot;
    if (p.module->interner().spelling(g.name) == "g2") g2_slot = g.slot;
  }
  EXPECT_TRUE(writes.contains(AbsLoc::global(g1_slot)));
  EXPECT_TRUE(writes.contains(AbsLoc::global(g2_slot)));  // transitive via inner
}

TEST(Absem, CallEdgesThroughFunctionValues) {
  const auto& p = compiled(R"(
    var g;
    fun f() { g = 1; }
    fun main() { var h = f; h(); }
  )");
  const auto r = abs_run(p);
  const std::uint32_t f_id = p.module->find_function("f")->index();
  const std::uint32_t main_id = p.lowered->entry_proc();
  ASSERT_TRUE(r.call_edges.contains(main_id));
  EXPECT_TRUE(r.call_edges.at(main_id).contains(f_id));
}

TEST(Absem, PointsToTracksAllocationSites) {
  const auto& p = compiled(R"(
    var p1;
    fun main() { sAl: p1 = alloc(2); sUse: *p1 = 5; }
  )");
  const auto r = abs_run(p);
  const lang::Stmt* alloc_stmt = p.module->find_labeled("sAl");
  const lang::Stmt* use_stmt = p.module->find_labeled("sUse");
  ASSERT_NE(alloc_stmt, nullptr);
  ASSERT_NE(use_stmt, nullptr);
  std::uint32_t slot = 0;
  for (const auto& g : p.lowered->globals()) {
    if (p.module->interner().spelling(g.name) == "p1") slot = g.slot;
  }
  bool checked = false;
  for (const auto& [point, store] : r.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    if (instr.stmt == use_stmt) {
      checked = true;
      EXPECT_TRUE(store.get(AbsLoc::global(slot)).ptrs.contains(AbsLoc::heap(alloc_stmt->id())));
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Absem, LambdaCapturedVariableSummarized) {
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var c = 0;
      var bump = fun () { c = c + 1; };
      bump();
      r = c;
    }
  )");
  const auto r = abs_run(p);
  EXPECT_FALSE(r.truncated);
  // The lambda's write lands on main's frame slot for c.
  const std::uint32_t main_id = p.lowered->entry_proc();
  bool lambda_writes_mains_frame = false;
  for (const auto& [proc, writes] : r.writes_direct) {
    if (proc == main_id) continue;
    for (const AbsLoc& loc : writes) {
      if (loc.kind == AbsLoc::Kind::Frame && loc.a == main_id) {
        lambda_writes_mains_frame = true;
      }
    }
  }
  EXPECT_TRUE(lambda_writes_mains_frame);
}

TEST(Absem, BranchPruningOnConstants) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      if (1 < 2) { x = 1; } else { sDead: x = 2; }
    }
  )");
  const auto r = abs_run(p);
  const lang::Stmt* dead = p.module->find_labeled("sDead");
  ASSERT_NE(dead, nullptr);
  for (const auto& [point, store] : r.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    EXPECT_NE(instr.stmt, dead) << "dead branch was explored";
  }
}

TEST(Absem, IntervalDomainBoundsLoopCounter) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      var i = 0;
      while (i < 10) { i = i + 1; }
      sQ: x = i;
    }
  )");
  const auto r = abs_run<Interval>(p);
  EXPECT_FALSE(r.truncated);
  // i stays non-negative (widening loses the upper bound, keeps the lower).
  const std::uint32_t main_id = p.lowered->entry_proc();
  const lang::Stmt* sq = p.module->find_labeled("sQ");
  for (const auto& [point, store] : r.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    if (instr.stmt == sq) {
      for (const auto& [loc, v] : store.entries()) {
        if (loc.kind == AbsLoc::Kind::Frame && loc.a == main_id && !v.num.is_bottom()) {
          EXPECT_GE(v.num.lo(), 0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace copar::absem
