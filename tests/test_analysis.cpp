// Client-analysis tests (§5): side effects, dependences, MHP, lifetimes,
// anomalies — on the paper's own examples where possible.
#include <gtest/gtest.h>

#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/analysis/depend.h"
#include "src/analysis/lifetime.h"
#include "src/analysis/mhp.h"
#include "src/analysis/sideeffect.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace copar::analysis {
namespace {

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

absem::AbsResult<absdom::FlatInt> abs_run(const CompiledProgram& p) {
  return absem::AbsExplorer<absdom::FlatInt>(*p.lowered, absem::AbsOptions{}).run();
}

TEST(SideEffect, PureFunctionDetected) {
  const auto& p = compiled(R"(
    var g;
    fun pure_add(a, b) { var t; t = a + b; return t; }
    fun impure() { g = 1; }
    fun main() { var r; r = pure_add(1, 2); impure(); }
  )");
  const SideEffects fx = analyze_side_effects(*p.lowered);
  EXPECT_TRUE(fx.is_pure(p.module->find_function("pure_add")->index()));
  EXPECT_FALSE(fx.is_pure(p.module->find_function("impure")->index()));
}

TEST(SideEffect, Example15FunctionsHaveExpectedEffects) {
  const auto& p = compiled(workload::example15_calls());
  const SideEffects fx = analyze_side_effects(*p.lowered);
  const auto slot_a = global_slot(*p.lowered, "A");
  const auto slot_b = global_slot(*p.lowered, "B");
  ASSERT_TRUE(slot_a && slot_b);
  const auto& f1 = fx.of(*p.lowered, "f1");
  EXPECT_TRUE(f1.writes.contains(absem::AbsLoc::global(*slot_a)));
  EXPECT_FALSE(f1.reads.contains(absem::AbsLoc::global(*slot_b)));
  const auto& f2 = fx.of(*p.lowered, "f2");
  EXPECT_TRUE(f2.reads.contains(absem::AbsLoc::global(*slot_b)));
}

TEST(SideEffect, IndependenceOfExample15Pairs) {
  const auto& p = compiled(workload::example15_calls());
  const SideEffects fx = analyze_side_effects(*p.lowered);
  const auto id = [&](const char* n) { return p.module->find_function(n)->index(); };
  EXPECT_TRUE(fx.independent(id("f1"), id("f2")));
  EXPECT_TRUE(fx.independent(id("f1"), id("f3")));
  EXPECT_FALSE(fx.independent(id("f1"), id("f4")));  // A
  EXPECT_FALSE(fx.independent(id("f2"), id("f3")));  // B
}

TEST(SideEffect, ThreadEffectsIncludedTransitively) {
  const auto& p = compiled(R"(
    var g;
    fun spawner() { cobegin { g = 1; } || skip; coend; }
    fun main() { spawner(); }
  )");
  const SideEffects fx = analyze_side_effects(*p.lowered);
  const auto slot = global_slot(*p.lowered, "g");
  EXPECT_TRUE(fx.of(*p.lowered, "spawner").writes.contains(absem::AbsLoc::global(*slot)));
}

TEST(Depend, ConcreteAndAbstractAgreeOnSimpleRace) {
  const auto& p = compiled(R"(
    var x;
    fun main() { cobegin { sW: x = 1; } || { sR: x = x + 1; } coend; }
  )");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const auto concrete = dependences_from(explore::explore(*p.lowered, opts));
  const auto abstract = dependences_from(abs_run(p));
  const auto sw = labeled_stmt(*p.lowered, "sW");
  const auto sr = labeled_stmt(*p.lowered, "sR");
  ASSERT_TRUE(sw && sr);
  EXPECT_TRUE(concrete.conflicting(*sw, *sr));
  EXPECT_TRUE(abstract.conflicting(*sw, *sr));
  // Kinds: sW writes x, sR reads and writes it.
  EXPECT_TRUE(concrete.has(*sw, *sr, DepKind::Flow));
  EXPECT_TRUE(concrete.has(*sw, *sr, DepKind::Output));
  EXPECT_TRUE(abstract.has(*sw, *sr, DepKind::Flow));
}

TEST(Depend, NoDependenceBetweenDisjointThreads) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() { cobegin { sX: x = 1; } || { sY: y = 2; } coend; }
  )");
  const auto abstract = dependences_from(abs_run(p));
  const auto sx = labeled_stmt(*p.lowered, "sX");
  const auto sy = labeled_stmt(*p.lowered, "sY");
  EXPECT_FALSE(abstract.conflicting(*sx, *sy));
}

TEST(Depend, SequentialDependencesSeeThroughCalls) {
  const auto& p = compiled(workload::example15_calls());
  const auto abs = abs_run(p);
  std::vector<std::uint32_t> ordered;
  for (const char* l : {"s1", "s2", "s3", "s4"}) {
    ordered.push_back(*labeled_stmt(*p.lowered, l));
  }
  const auto deps = sequential_dependences(ordered, abs);
  const auto s = [&](int i) { return ordered[static_cast<std::size_t>(i - 1)]; };
  EXPECT_TRUE(deps.conflicting(s(1), s(4)));
  EXPECT_TRUE(deps.conflicting(s(2), s(3)));
  EXPECT_FALSE(deps.conflicting(s(1), s(2)));
  EXPECT_FALSE(deps.conflicting(s(1), s(3)));
  EXPECT_FALSE(deps.conflicting(s(2), s(4)));
  EXPECT_FALSE(deps.conflicting(s(3), s(4)));
}

TEST(Mhp, LabeledQueries) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() {
      sBefore: x = 5;
      cobegin { sA: x = 1; } || { sB: y = 2; } coend;
      sAfter: y = x;
    }
  )");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const Mhp concrete = mhp_from(explore::explore(*p.lowered, opts));
  EXPECT_EQ(concrete.parallel(*p.lowered, "sA", "sB"), MhpAnswer::Yes);
  EXPECT_EQ(concrete.parallel(*p.lowered, "sBefore", "sA"), MhpAnswer::No);
  EXPECT_EQ(concrete.parallel(*p.lowered, "sAfter", "sA"), MhpAnswer::No);
  EXPECT_EQ(concrete.parallel(*p.lowered, "sNoSuchLabel", "sA"), MhpAnswer::UnknownLabel);
  EXPECT_EQ(concrete.parallel(*p.lowered, "sA", "sNoSuchLabel"), MhpAnswer::UnknownLabel);

  const Mhp abstract = mhp_from(abs_run(p));
  EXPECT_EQ(abstract.parallel(*p.lowered, "sA", "sB"), MhpAnswer::Yes);
  EXPECT_EQ(abstract.parallel(*p.lowered, "sBefore", "sA"), MhpAnswer::No);
  EXPECT_EQ(abstract.parallel(*p.lowered, "sAfter", "sA"), MhpAnswer::No);
}

TEST(Lifetime, PlacementExampleFacts) {
  const auto& p = compiled(workload::placement_b1_b2());
  const Lifetimes lt = analyze_lifetimes(*p.lowered);
  const SiteLifetime* b1 = lt.site(*p.lowered, "sB1");
  const SiteLifetime* b2 = lt.site(*p.lowered, "sB2");
  ASSERT_NE(b1, nullptr);
  ASSERT_NE(b2, nullptr);
  EXPECT_TRUE(b1->shared_across_threads);
  EXPECT_FALSE(b2->shared_across_threads);
}

TEST(Lifetime, EscapeDetection) {
  const auto& p = compiled(R"(
    var keep;
    fun maker() {
      var tmp;
      sLocal: tmp = alloc(1);
      *tmp = 1;
      sKept: keep = alloc(1);
      *keep = 2;
    }
    fun main() { maker(); }
  )");
  const Lifetimes lt = analyze_lifetimes(*p.lowered);
  const SiteLifetime* local = lt.site(*p.lowered, "sLocal");
  const SiteLifetime* kept = lt.site(*p.lowered, "sKept");
  ASSERT_NE(local, nullptr);
  ASSERT_NE(kept, nullptr);
  EXPECT_FALSE(local->escapes_creating_function);
  EXPECT_TRUE(kept->escapes_creating_function);
  EXPECT_TRUE(kept->live_at_program_exit);
  EXPECT_FALSE(local->live_at_program_exit);
}

TEST(Anomaly, RaceFoundWithoutLocks) {
  const auto& p = compiled(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; }
  )");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const Anomalies a = anomalies_from(explore::explore(*p.lowered, opts));
  EXPECT_TRUE(a.any());
  EXPECT_TRUE(a.all.begin()->write_write);
}

TEST(Anomaly, LockedWritesNotCoEnabled) {
  const auto& p = compiled(R"(
    var m; var x;
    fun main() {
      cobegin
        { lock(m); sW1: x = 1; unlock(m); }
      ||
        { lock(m); sW2: x = 2; unlock(m); }
      coend;
    }
  )");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const Mhp mhp = mhp_from(explore::explore(*p.lowered, opts));
  EXPECT_EQ(mhp.parallel(*p.lowered, "sW1", "sW2"), MhpAnswer::No);
}

TEST(Common, DescribeHelpers) {
  const auto& p = compiled(R"(
    var counter;
    fun main() { sInc: counter = counter + 1; }
  )");
  const auto slot = global_slot(*p.lowered, "counter");
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(describe_loc(*p.lowered, absem::AbsLoc::global(*slot)), "global counter");
  EXPECT_EQ(describe_stmt(*p.lowered, *labeled_stmt(*p.lowered, "sInc")), "sInc");
  EXPECT_FALSE(global_slot(*p.lowered, "missing").has_value());
  EXPECT_FALSE(labeled_stmt(*p.lowered, "missing").has_value());
}

// --- golden report output --------------------------------------------------
// The reports are part of the tool surface (cmd_analyze prints them), so
// their exact text and ordering are pinned: sorted by source span, then
// statement ids — never by internal set order.

TEST(AnomalyGolden, ReportIsByteStable) {
  const auto& p = compiled(R"(var x; var y;
fun main() {
  cobegin
    { s1: x = 1; s2: y = 1; }
  ||
    { s3: x = 2; s4: y = x; }
  coend;
})");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const Anomalies a = anomalies_from(explore::explore(*p.lowered, opts));
  EXPECT_EQ(a.report(*p.lowered),
            "write/write race: s1 (4:11) vs s3 (6:11)\n"
            "write/read race: s1 (4:11) vs s4 (6:22)\n"
            "write/write race: s2 (4:22) vs s4 (6:22)\n");
}

TEST(MhpGolden, ReportIsByteStable) {
  // The cobegin is labeled to pin down that it does NOT appear in the
  // report: a thread's halt folds into its preceding action (settle — the
  // paper's coend consumes no transition of its own) and the parent's join
  // only enables once every child has terminated, so the cobegin's own
  // join/halt actions are never co-enabled with the branch bodies.
  const auto& p = compiled(R"(var x; var y;
fun main() {
  sCo: cobegin
    { s1: x = 1; }
  ||
    { s2: y = 2; }
  coend;
})");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const Mhp mhp = mhp_from(explore::explore(*p.lowered, opts));
  EXPECT_EQ(mhp.report(*p.lowered), "s1 || s2\n");
}

}  // namespace
}  // namespace copar::analysis
