#include <gtest/gtest.h>

#include "src/sem/program.h"

namespace copar::sem {
namespace {

TEST(Lower, MainRequired) {
  EXPECT_THROW(compile("var x;"), Error);
}

TEST(Lower, MainMustTakeNoParams) {
  EXPECT_THROW(compile("fun main(a) { skip; }"), Error);
}

TEST(Lower, StraightLineBody) {
  auto p = compile("var x; fun main() { x = 1; x = 2; }");
  const Proc& main_proc = p->lowered->proc(p->lowered->entry_proc());
  ASSERT_EQ(main_proc.code.size(), 3u);  // two assigns + halt
  EXPECT_EQ(main_proc.code[0].op, Op::Assign);
  EXPECT_EQ(main_proc.code[1].op, Op::Assign);
  EXPECT_EQ(main_proc.code[2].op, Op::Halt);
}

TEST(Lower, DeclarationsLowerToNothing) {
  auto p = compile("fun main() { var a; var b; skip; }");
  const Proc& main_proc = p->lowered->proc(p->lowered->entry_proc());
  EXPECT_EQ(main_proc.code.size(), 2u);  // skip + halt
  // ...but they reserve frame slots (cell 0 + a + b).
  EXPECT_EQ(main_proc.nslots, 3u);
}

TEST(Lower, IfElseBranchTargets) {
  auto p = compile("var x; fun main() { if (x) { x = 1; } else { x = 2; } x = 3; }");
  const Proc& m = p->lowered->proc(p->lowered->entry_proc());
  // branch, then-assign, jump, else-assign, tail-assign, halt
  ASSERT_EQ(m.code.size(), 6u);
  EXPECT_EQ(m.code[0].op, Op::Branch);
  EXPECT_EQ(m.code[0].t1, 1u);
  EXPECT_EQ(m.code[0].t2, 3u);
  EXPECT_EQ(m.code[2].op, Op::Jump);
  EXPECT_EQ(m.code[2].t1, 4u);
}

TEST(Lower, WhileLoopShape) {
  auto p = compile("var x; fun main() { while (x < 3) { x = x + 1; } }");
  const Proc& m = p->lowered->proc(p->lowered->entry_proc());
  // branch, body-assign, back-jump, halt
  ASSERT_EQ(m.code.size(), 4u);
  EXPECT_EQ(m.code[0].op, Op::Branch);
  EXPECT_EQ(m.code[0].t1, 1u);
  EXPECT_EQ(m.code[0].t2, 3u);
  EXPECT_EQ(m.code[2].op, Op::Jump);
  EXPECT_EQ(m.code[2].t1, 0u);
}

TEST(Lower, CobeginCreatesThreadProcs) {
  auto p = compile(R"(
    var x; var y;
    fun main() { cobegin { x = 1; } || { y = 2; } coend; }
  )");
  const Proc& m = p->lowered->proc(p->lowered->entry_proc());
  ASSERT_EQ(m.code.size(), 3u);  // fork, join, halt
  EXPECT_EQ(m.code[0].op, Op::Fork);
  EXPECT_EQ(m.code[1].op, Op::Join);
  ASSERT_EQ(m.code[0].forks.size(), 2u);
  for (std::uint32_t child : m.code[0].forks) {
    const Proc& tp = p->lowered->proc(child);
    EXPECT_TRUE(tp.is_thread);
    EXPECT_EQ(tp.nslots, 0u);  // runs in the forker's frame
    EXPECT_EQ(tp.owner_fn, p->lowered->entry_proc());
    ASSERT_EQ(tp.code.size(), 2u);  // assign + halt
    EXPECT_EQ(tp.code[0].op, Op::Assign);
    EXPECT_EQ(tp.code[1].op, Op::Halt);
  }
}

TEST(Lower, BranchLocalsGetSlotsInEnclosingFrame) {
  auto p = compile(R"(
    fun main() {
      cobegin { var t; t = 1; } || { var u; u = 2; } coend;
    }
  )");
  const Proc& m = p->lowered->proc(p->lowered->entry_proc());
  EXPECT_EQ(m.nslots, 3u);  // link + t + u (distinct slots per branch)
}

TEST(Lower, GlobalSlotsIncludeFunctions) {
  auto p = compile("var a; var b; fun f() { skip; } fun main() { f(); }");
  // cell0 + a + b + f + main
  EXPECT_EQ(p->lowered->nglobal_cells(), 5u);
}

TEST(Lower, VarlocsResolveGlobalsAndLocals) {
  auto p = compile(R"(
    var g;
    fun main() { var l; l = g; }
  )");
  const Proc& m = p->lowered->proc(p->lowered->entry_proc());
  const Instr& assign = m.code[0];
  const VarLoc& lhs = p->lowered->varloc(assign.lhs->id());
  EXPECT_FALSE(lhs.is_global);
  EXPECT_EQ(lhs.hops, 0u);
  const VarLoc& rhs = p->lowered->varloc(assign.rhs->id());
  EXPECT_TRUE(rhs.is_global);
}

TEST(Lower, LambdaHopsCountLexicalLevels) {
  auto p = compile(R"(
    var g;
    fun main() {
      var x;
      g = fun () { x = 1; };
      g();
    }
  )");
  // Find the lambda proc (unnamed function).
  const Proc* lambda = nullptr;
  for (const Proc& proc : p->lowered->procs()) {
    if (proc.fun != nullptr && !proc.fun->name().valid()) lambda = &proc;
  }
  ASSERT_NE(lambda, nullptr);
  EXPECT_EQ(lambda->lexical_parent, p->lowered->entry_proc());
  const Instr& assign = lambda->code[0];
  const VarLoc& lhs = p->lowered->varloc(assign.lhs->id());
  EXPECT_FALSE(lhs.is_global);
  EXPECT_EQ(lhs.hops, 1u);  // one static-link hop up to main's frame
}

TEST(Lower, NestedCobeginProcsChainOwnership) {
  auto p = compile(R"(
    var x;
    fun main() {
      cobegin {
        cobegin { x = 1; } || { x = 2; } coend;
      } || { x = 3; } coend;
    }
  )");
  int thread_count = 0;
  for (const Proc& proc : p->lowered->procs()) {
    if (proc.is_thread) {
      ++thread_count;
      EXPECT_EQ(proc.owner_fn, p->lowered->entry_proc());
    }
  }
  EXPECT_EQ(thread_count, 4);
}

TEST(Lower, DisassembleMentionsEveryProc) {
  auto p = compile("var x; fun f() { x = 1; } fun main() { f(); }");
  const std::string dis = p->lowered->disassemble();
  EXPECT_NE(dis.find("'f'"), std::string::npos);
  EXPECT_NE(dis.find("'main'"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace copar::sem
