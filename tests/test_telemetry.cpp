// Telemetry layer tests: phase-timer nesting, the trace ring buffer,
// StatRegistry counter handles / gauges, the JSON writer, and a golden
// check that the `--json` exploration report parses and agrees with the
// text counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/explore/report.h"
#include "src/sem/program.h"
#include "src/support/json.h"
#include "src/support/metrics.h"
#include "src/support/stats.h"
#include "src/support/telemetry.h"
#include "src/workload/paper_examples.h"

namespace copar {
namespace {

using telemetry::Phase;
using telemetry::Telemetry;

// --- minimal JSON parser (validation only: the repo has no JSON reader) ---

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  const JsonValue& at(const std::string& key) const {
    auto it = members.find(key);
    if (it == members.end()) {
      static const JsonValue missing;
      ADD_FAILURE() << "missing JSON key: " << key;
      return missing;
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why + " at offset " + std::to_string(pos_);
    }
    pos_ = s_.size();  // stop consuming
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end");
      return {};
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    eat('{');
    if (eat('}')) return v;
    do {
      skip_ws();
      JsonValue key = string_value();
      if (!eat(':')) fail("expected ':'");
      v.members[key.str] = value();
    } while (eat(','));
    if (!eat('}')) fail("expected '}'");
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    eat('[');
    if (eat(']')) return v;
    do {
      v.items.push_back(value());
    } while (eat(','));
    if (!eat(']')) fail("expected ']'");
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    if (!eat('"')) {
      fail("expected string");
      return v;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        switch (s_[pos_]) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'u':
            pos_ += 4;  // keep validation simple: skip the code point
            v.str += '?';
            break;
          default: v.str += s_[pos_];
        }
      } else {
        v.str += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (s_.substr(pos_, 4) == "true") {
      v.b = true;
      pos_ += 4;
    } else if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null_value() {
    JsonValue v;
    if (s_.substr(pos_, 4) == "null") {
      pos_ += 4;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      fail("expected number");
      return v;
    }
    v.num = std::stod(std::string(s_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

JsonValue parse_json_or_fail(const std::string& text) {
  JsonParser p(text);
  JsonValue v = p.parse();
  EXPECT_TRUE(p.ok()) << p.error() << "\nin: " << text.substr(0, 400);
  return v;
}

// --- fake clock for deterministic phase-timer tests --------------------

std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now; }

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry& t = Telemetry::global();
    t.reset();
    t.enable_metrics(true);
    t.set_clock_for_test(&fake_clock);
    g_fake_now = 0;
  }
  void TearDown() override {
    Telemetry& t = Telemetry::global();
    t.enable_metrics(false);
    t.enable_trace(0);
    t.set_clock_for_test(nullptr);
    t.reset();
  }
};

TEST_F(TelemetryTest, NestedPhasesAccountExclusiveTime) {
  Telemetry& t = Telemetry::global();
  g_fake_now = 100;
  t.enter(Phase::Expansion);
  g_fake_now = 150;
  t.enter(Phase::Stubborn);  // suspends Expansion after 50ns of self time
  g_fake_now = 250;
  t.leave(Phase::Stubborn);  // 100ns
  g_fake_now = 400;
  t.leave(Phase::Expansion);  // +150ns of self time

  EXPECT_EQ(t.phase_ns(Phase::Stubborn), 100u);
  EXPECT_EQ(t.phase_ns(Phase::Expansion), 200u);
  EXPECT_EQ(t.phase_count(Phase::Stubborn), 1u);
  EXPECT_EQ(t.phase_count(Phase::Expansion), 1u);
  // Exclusive accounting: self times sum to the instrumented wall time.
  EXPECT_EQ(t.phase_ns(Phase::Stubborn) + t.phase_ns(Phase::Expansion), 300u);
  EXPECT_EQ(t.phase_depth(), 0u);
}

TEST_F(TelemetryTest, ReentrantSamePhaseSumsToWallTime) {
  Telemetry& t = Telemetry::global();
  g_fake_now = 0;
  t.enter(Phase::Canonicalize);
  g_fake_now = 10;
  t.enter(Phase::Canonicalize);
  g_fake_now = 20;
  t.leave(Phase::Canonicalize);
  g_fake_now = 30;
  t.leave(Phase::Canonicalize);
  EXPECT_EQ(t.phase_ns(Phase::Canonicalize), 30u);
  EXPECT_EQ(t.phase_count(Phase::Canonicalize), 2u);
}

TEST_F(TelemetryTest, MismatchedLeaveIsIgnored) {
  Telemetry& t = Telemetry::global();
  t.enter(Phase::Parse);
  t.leave(Phase::Folding);  // wrong phase: dropped, Parse stays open
  EXPECT_EQ(t.phase_depth(), 1u);
  t.leave(Phase::Parse);
  EXPECT_EQ(t.phase_depth(), 0u);
  t.leave(Phase::Parse);  // empty stack: no crash
  EXPECT_EQ(t.phase_count(Phase::Parse), 1u);
}

TEST_F(TelemetryTest, ScopedPhaseIsNoopWhenDisabled) {
  Telemetry& t = Telemetry::global();
  t.enable_metrics(false);
  {
    telemetry::ScopedPhase p(Phase::Parse);
    g_fake_now = 1000;
  }
  EXPECT_EQ(t.phase_ns(Phase::Parse), 0u);
  EXPECT_EQ(t.phase_count(Phase::Parse), 0u);
}

TEST_F(TelemetryTest, TraceRingKeepsNewestAndCountsDropped) {
  Telemetry& t = Telemetry::global();
  t.enable_trace(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    g_fake_now = i;
    t.record_counter("configs", i);
  }
  EXPECT_EQ(t.trace_size(), 4u);
  EXPECT_EQ(t.trace_dropped(), 2u);
  const auto events = t.trace_events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two (ts 1, 2) were overwritten; order is oldest-first.
  EXPECT_EQ(events.front().ts_ns, 3u);
  EXPECT_EQ(events.back().ts_ns, 6u);
  EXPECT_EQ(events.back().value, 6u);
}

TEST_F(TelemetryTest, ScopedPhaseEmitsCompleteTraceEvent) {
  Telemetry& t = Telemetry::global();
  t.enable_trace(16);
  g_fake_now = 1000;
  {
    telemetry::ScopedPhase p(Phase::Stubborn);
    g_fake_now = 1500;
  }
  const auto events = t.trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "stubborn");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 500u);
}

TEST_F(TelemetryTest, TraceJsonParsesAndContainsEvents) {
  Telemetry& t = Telemetry::global();
  t.enable_trace(16);
  g_fake_now = 100;
  t.enter(Phase::Expansion);
  g_fake_now = 300;
  t.leave(Phase::Expansion);
  t.record_counter("configs", 42);
  t.record_instant("truncated");

  std::ostringstream os;
  t.write_trace_json(os);
  const JsonValue doc = parse_json_or_fail(os.str());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::Array);
  // process_name metadata + thread_name metadata (one recording track) +
  // complete + counter + instant.
  ASSERT_EQ(events.items.size(), 5u);
  EXPECT_EQ(events.items[0].at("name").str, "process_name");
  EXPECT_EQ(events.items[1].at("name").str, "thread_name");
  EXPECT_EQ(events.items[1].at("args").at("name").str, "main");
  EXPECT_EQ(events.items[2].at("name").str, "expansion");
  EXPECT_EQ(events.items[2].at("ph").str, "X");
  EXPECT_DOUBLE_EQ(events.items[2].at("dur").num, 0.2);  // 200ns = 0.2us
  EXPECT_EQ(events.items[3].at("ph").str, "C");
  EXPECT_DOUBLE_EQ(events.items[3].at("args").at("value").num, 42.0);
  // Every non-metadata event carries the recording track's tid.
  EXPECT_EQ(events.items[2].at("tid").num, events.items[1].at("tid").num);
}

// --- StatRegistry: handles, gauges, timings ----------------------------

TEST(StatHandles, LazyHandleMatchesEagerAddByteForByte) {
  StatRegistry eager;
  eager.add("stubborn_steps");
  eager.add("stubborn_steps");
  eager.set("configs", 7);

  StatRegistry lazy;
  StatRegistry::Counter steps = lazy.counter("stubborn_steps");
  StatRegistry::Counter never = lazy.counter("proviso_full_expansions");
  (void)never;  // resolved but never fired: must not materialize
  steps.add();
  steps.add();
  lazy.set("configs", 7);

  EXPECT_EQ(eager.to_string(), lazy.to_string());
  EXPECT_EQ(lazy.to_string(), "configs=7\nstubborn_steps=2\n");
  EXPECT_EQ(lazy.get("proviso_full_expansions"), 0u);
}

TEST(StatHandles, DefaultConstructedHandleIsNoop) {
  StatRegistry::Counter c;
  c.add();  // must not crash
}

TEST(StatHandles, GaugesAndTimingsStayOutOfToString) {
  StatRegistry s;
  s.add("configs", 3);
  s.set_gauge("visited_bytes", 4096);
  s.add_time_ns("expansion", 1'000'000);
  EXPECT_EQ(s.to_string(), "configs=3\n");
  EXPECT_EQ(s.gauge("visited_bytes"), 4096u);
  EXPECT_EQ(s.gauge("absent"), 0u);
  EXPECT_EQ(s.times_ns().at("expansion"), 1'000'000u);
  s.clear();
  EXPECT_TRUE(s.gauges().empty());
  EXPECT_TRUE(s.times_ns().empty());
}

// --- JsonWriter --------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNests) {
  std::ostringstream os;
  support::JsonWriter w(os);
  w.begin_object();
  w.key("s");
  w.value("a\"b\\c\nd\x01");
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(-2);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"s": "a\"b\\c\nd\u0001","list": [1,-2,true,null]})");
  const JsonValue doc = parse_json_or_fail(os.str());
  EXPECT_EQ(doc.at("list").items.size(), 4u);
}

// --- golden: the --json exploration report -----------------------------

TEST(JsonReport, ExploreReportParsesAndMatchesTextCounters) {
  Telemetry& t = Telemetry::global();
  t.reset();
  t.enable_metrics(true);

  auto program = compile(workload::fig2_shasha_snir());
  explore::ExploreOptions opts;
  const auto r = explore::explore(*program->lowered, opts);

  std::ostringstream os;
  support::JsonWriter w(os);
  explore::write_json_report(w, "explore", "fig2_shasha_snir.cop", r, opts);
  const JsonValue doc = parse_json_or_fail(os.str());

  // Counters in the JSON must match both the result and the text report.
  EXPECT_EQ(doc.at("counters").at("configs").num, static_cast<double>(r.num_configs));
  EXPECT_EQ(doc.at("counters").at("transitions").num, static_cast<double>(r.num_transitions));
  const std::string text = r.stats.to_string();
  EXPECT_NE(text.find("configs=" + std::to_string(r.num_configs) + "\n"), std::string::npos);
  EXPECT_NE(text.find("transitions=" + std::to_string(r.num_transitions) + "\n"),
            std::string::npos);

  EXPECT_EQ(doc.at("command").str, "explore");
  EXPECT_EQ(doc.at("options").at("reduction").str, "full");
  EXPECT_EQ(doc.at("result").at("terminals").num, 3.0);  // paper: {(0,1),(1,0),(1,1)}
  EXPECT_FALSE(doc.at("result").at("deadlock").b);
  // Telemetry was enabled: phase timings and memory gauges must be there.
  EXPECT_FALSE(doc.at("phases_ms").members.empty());
  EXPECT_GT(doc.at("memory").at("peak_rss_bytes").num, 0.0);
  EXPECT_GT(doc.at("gauges").at("visited_bytes").num, 0.0);

  t.enable_metrics(false);
  t.reset();
}

TEST(JsonReport, ParallelReportPinsWorkerAggregatesAndStealCounters) {
  // The parallel engine's observability contract: per-worker timings come
  // with the stable workers.{min,max,sum} aggregate keys (the workerN.*
  // keys are nondeterministic in count only across engines, not runs), and
  // the steal counters are always present in the counters section.
  Telemetry& t = Telemetry::global();
  t.reset();
  t.enable_metrics(true);

  auto program = compile(workload::fig2_shasha_snir());
  explore::ExploreOptions opts;
  opts.threads = 4;
  const auto r = explore::explore(*program->lowered, opts);

  const auto& times = r.stats.times_ns();
  EXPECT_TRUE(times.contains("workers.min"));
  EXPECT_TRUE(times.contains("workers.max"));
  EXPECT_TRUE(times.contains("workers.sum"));
  EXPECT_LE(times.at("workers.min"), times.at("workers.max"));
  EXPECT_LE(times.at("workers.max"), times.at("workers.sum"));
  for (unsigned i = 0; i < opts.threads; ++i) {
    EXPECT_TRUE(times.contains("worker" + std::to_string(i) + ".expansion"));
  }

  std::ostringstream os;
  support::JsonWriter w(os);
  explore::write_json_report(w, "explore", "fig2_shasha_snir.cop", r, opts);
  const JsonValue doc = parse_json_or_fail(os.str());
  EXPECT_TRUE(doc.at("timings_ms").members.contains("workers.min"));
  EXPECT_TRUE(doc.at("timings_ms").members.contains("workers.max"));
  EXPECT_TRUE(doc.at("timings_ms").members.contains("workers.sum"));
  EXPECT_TRUE(doc.at("counters").members.contains("steals"));
  EXPECT_TRUE(doc.at("counters").members.contains("stolen_items"));
  EXPECT_TRUE(doc.at("counters").members.contains("steal_misses"));
  EXPECT_TRUE(doc.at("counters").members.contains("frontier_contention"));
  EXPECT_EQ(doc.at("gauges").at("threads").num, 4.0);

  t.enable_metrics(false);
  t.reset();
}

// --- multi-thread trace stress -----------------------------------------

TEST_F(TelemetryTest, MultiThreadTraceStressLosesNothingBelowCapacity) {
  Telemetry& t = Telemetry::global();
  t.set_clock_for_test(nullptr);  // real clock: timestamps must advance
  t.enable_trace(4096);           // per-track ring capacity, well above M

  constexpr int kThreads = 8;
  constexpr int kEvents = 500;
  std::atomic<bool> go{false};
  std::vector<std::uint32_t> tids(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      telemetry::ThreadRegistration track("stress" + std::to_string(i));
      tids[static_cast<std::size_t>(i)] = track.tid();
      while (!go.load(std::memory_order_acquire)) {
      }
      Telemetry& tel = Telemetry::global();
      for (int j = 0; j < kEvents; ++j) {
        tel.record_complete("ev", static_cast<std::uint64_t>(j), 1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  // Below capacity nothing may be dropped: every event from every thread
  // survives into the flush, attributed to its own track.
  EXPECT_EQ(t.trace_dropped(), 0u);
  EXPECT_EQ(t.trace_size(), static_cast<std::size_t>(kThreads) * kEvents);

  const std::vector<telemetry::TraceEvent> events = t.trace_events();
  std::map<std::uint32_t, std::size_t> per_tid;
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const telemetry::TraceEvent& e : events) {
    per_tid[e.tid] += 1;
    // Within one track events flush oldest-first; a single-writer ring
    // must preserve that order.
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts_ns, it->second);
    }
    last_ts[e.tid] = e.ts_ns;
  }
  ASSERT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(per_tid[tids[static_cast<std::size_t>(i)]],
              static_cast<std::size_t>(kEvents))
        << "track " << i;
  }
}

// --- sampler timeline ---------------------------------------------------

using telemetry::Gauge;

TEST_F(TelemetryTest, TimelineDecimationIsDeterministic) {
  Telemetry& t = Telemetry::global();
  t.set_timeline_capacity(8);

  // 9 accepted ticks overflow capacity 8: every other sample is dropped
  // and the stride doubles. Each tick stamps Configs with its index.
  for (std::uint64_t i = 0; i < 9; ++i) {
    g_fake_now = i * 1'000'000;  // 1ms apart
    t.set_live(Gauge::Configs, i);
    t.sample_now();
  }
  std::vector<Telemetry::Sample> tl = t.timeline();
  ASSERT_EQ(tl.size(), 5u);  // indices 0,2,4,6,8 survive
  EXPECT_EQ(t.timeline_compactions(), 1u);
  for (std::size_t i = 0; i < tl.size(); ++i) {
    EXPECT_EQ(tl[i].t_ns, i * 2 * 1'000'000);
    EXPECT_EQ(tl[i].gauges[static_cast<std::size_t>(Gauge::Configs)], i * 2);
  }

  // Stride is now 2: the next tick is rejected, the one after accepted.
  g_fake_now = 9'000'000;
  t.sample_now();
  EXPECT_EQ(t.timeline().size(), 5u);
  g_fake_now = 10'000'000;
  t.set_live(Gauge::Configs, 10);
  t.sample_now();
  tl = t.timeline();
  ASSERT_EQ(tl.size(), 6u);
  EXPECT_EQ(tl.back().t_ns, 10u * 1'000'000);
  EXPECT_EQ(tl.back().gauges[static_cast<std::size_t>(Gauge::Configs)], 10u);
}

TEST_F(TelemetryTest, TimelineJsonSchemaIsPinned) {
  Telemetry& t = Telemetry::global();
  for (std::uint64_t i = 0; i < 3; ++i) {
    g_fake_now = 500'000 + i * 2'000'000;
    t.set_live(Gauge::Configs, 10 * i);
    t.set_live(Gauge::Frontier, i);
    t.sample_now();
  }

  std::ostringstream os;
  {
    support::JsonWriter w(os);
    t.write_timeline_json(w);
  }
  const JsonValue doc = parse_json_or_fail(os.str());

  // Schema golden: field names and types are contract (report.cpp embeds
  // this object as "timeline" in every --json report).
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("sample_interval_ms").kind, JsonValue::Kind::Number);
  EXPECT_EQ(doc.at("compactions").kind, JsonValue::Kind::Number);
  const JsonValue& samples = doc.at("samples");
  ASSERT_EQ(samples.kind, JsonValue::Kind::Array);
  ASSERT_EQ(samples.items.size(), 3u);
  const char* kFields[] = {"t_ms",           "configs",        "transitions",
                           "frontier",       "visited_entries", "visited_bytes",
                           "steals",         "frontier_bytes", "rss_bytes"};
  for (const JsonValue& s : samples.items) {
    ASSERT_EQ(s.kind, JsonValue::Kind::Object);
    EXPECT_EQ(s.members.size(), std::size(kFields));
    for (const char* f : kFields) {
      EXPECT_EQ(s.at(f).kind, JsonValue::Kind::Number) << f;
    }
  }
  // Timestamps are rebased to the first sample.
  EXPECT_DOUBLE_EQ(samples.items[0].at("t_ms").num, 0.0);
  EXPECT_DOUBLE_EQ(samples.items[1].at("t_ms").num, 2.0);
  EXPECT_DOUBLE_EQ(samples.items[2].at("configs").num, 20.0);
}

TEST(JsonReport, TimelineAppearsInReportWhenSampled) {
  Telemetry& t = Telemetry::global();
  t.reset();
  t.enable_metrics(true);
  // Interval far past the run: the only sample is the final one taken by
  // stop_sampler(), making the timeline deterministic.
  t.start_sampler(60'000.0);

  auto program = compile(workload::fig2_shasha_snir());
  explore::ExploreOptions opts;
  const auto r = explore::explore(*program->lowered, opts);
  t.stop_sampler();

  std::ostringstream os;
  support::JsonWriter w(os);
  explore::write_json_report(w, "explore", "fig2_shasha_snir.cop", r, opts);
  const JsonValue doc = parse_json_or_fail(os.str());
  const JsonValue& tl = doc.at("timeline");
  ASSERT_EQ(tl.kind, JsonValue::Kind::Object);
  ASSERT_EQ(tl.at("samples").items.size(), 1u);
  // The engine's final gauge flush feeds the sample.
  EXPECT_EQ(tl.at("samples").items[0].at("configs").num,
            static_cast<double>(r.num_configs));

  t.enable_metrics(false);
  t.reset();
}

// --- metrics export surface ---------------------------------------------

TEST(MetricsSchema, JsonFieldsAndTypesArePinned) {
  Telemetry& t = Telemetry::global();
  t.reset();
  t.enable_metrics(true);
  t.set_clock_for_test(&fake_clock);
  g_fake_now = 0;
  t.enter(Phase::Expansion);
  g_fake_now = 5'000'000;
  t.leave(Phase::Expansion);
  t.set_live(Gauge::Configs, 7);
  t.sample_now();

  StatRegistry stats;
  stats.add("configs", 7);
  stats.set_gauge("threads", 4);
  stats.add_time_ns("total", 1'000'000);
  t.publish_stats(stats);

  const auto snap = telemetry::MetricsSnapshot::capture();
  std::ostringstream os;
  snap.write_json(os);
  const JsonValue doc = parse_json_or_fail(os.str());

  // Schema golden: `copar-cli metrics-dump` and --metrics-out emit this
  // document; field names and types are contract, values are not.
  EXPECT_EQ(doc.at("tool").str, "copar-metrics");
  EXPECT_EQ(doc.at("schema").num, 1.0);
  EXPECT_EQ(doc.at("counters").kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("gauges").kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("timings_ms").kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("phases_ms").kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("phase_counts").kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("memory").at("peak_rss_bytes").kind, JsonValue::Kind::Number);
  EXPECT_EQ(doc.at("timeline").at("compactions").kind, JsonValue::Kind::Number);
  EXPECT_EQ(doc.at("timeline").at("samples").kind, JsonValue::Kind::Array);

  // Published stats and per-track phase totals round-trip.
  EXPECT_EQ(doc.at("counters").at("configs").num, 7.0);
  EXPECT_EQ(doc.at("gauges").at("threads").num, 4.0);
  EXPECT_DOUBLE_EQ(doc.at("timings_ms").at("total").num, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("phases_ms").at("expansion").num, 5.0);
  EXPECT_EQ(doc.at("phase_counts").at("expansion").num, 1.0);
  ASSERT_EQ(doc.at("timeline").at("samples").items.size(), 1u);
  EXPECT_EQ(doc.at("timeline").at("samples").items[0].at("configs").num, 7.0);

  t.enable_metrics(false);
  t.set_clock_for_test(nullptr);
  t.reset();
}

TEST(MetricsSchema, CowGaugesExportedByEngines) {
  Telemetry& t = Telemetry::global();
  t.reset();
  t.enable_metrics(true);

  auto program = compile(workload::fig2_shasha_snir());
  explore::ExploreOptions opts;
  (void)explore::explore(*program->lowered, opts);

  const auto snap = telemetry::MetricsSnapshot::capture();
  std::ostringstream os;
  snap.write_json(os);
  const JsonValue doc = parse_json_or_fail(os.str());
  const JsonValue& gauges = doc.at("gauges");
  // The COW representation's telemetry: clone / in-place-write counts and
  // the peak of the live structural-bytes gauge. Values vary with the
  // machine and schedule; presence and type are the contract.
  for (const char* name : {"cow.objects_copied", "cow.objects_shared", "cow.process_clones",
                           "frontier_peak_bytes"}) {
    EXPECT_EQ(gauges.at(name).kind, JsonValue::Kind::Number) << name;
  }
  // Any exploration writes through the COW seam at least once.
  EXPECT_GT(gauges.at("cow.objects_shared").num + gauges.at("cow.objects_copied").num, 0.0);

  t.enable_metrics(false);
  t.reset();
}

TEST(MetricsSchema, PrometheusRendersStableFamilies) {
  telemetry::MetricsSnapshot snap;
  snap.counters["configs"] = 12;
  snap.counters["weird-name.x"] = 1;
  snap.gauges["threads"] = 4;
  snap.times_ns["total"] = 2'000'000'000;
  snap.phases_ns["expansion"] = 1'500'000'000;
  snap.peak_rss_bytes = 1024;

  std::ostringstream os;
  snap.write_prometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE copar_configs_total counter\ncopar_configs_total 12\n"),
            std::string::npos);
  // Names outside [a-zA-Z0-9_:] are sanitized to underscores.
  EXPECT_NE(out.find("copar_weird_name_x_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE copar_threads gauge\ncopar_threads 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("copar_phase_seconds{phase=\"expansion\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(out.find("copar_timing_seconds{name=\"total\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("copar_peak_rss_bytes 1024\n"), std::string::npos);
  EXPECT_NE(out.find("copar_timeline_samples 0\n"), std::string::npos);
}

}  // namespace
}  // namespace copar
