#include <gtest/gtest.h>

#include "src/sem/procstring.h"

namespace copar::sem {
namespace {

TEST(ProcString, EmptyByDefault) {
  ProcString s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.to_string(), "ε");
}

TEST(ProcString, AppendKeepsNetNormalForm) {
  ProcString s;
  s = s.append(ProcString::call_sym(3));
  s = s.append(ProcString::call_sym(4));
  EXPECT_EQ(s.size(), 2u);
  s = s.append(ProcString::ret_sym(4));  // cancels the call of 4
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.to_string(), "c3");
}

TEST(ProcString, ForkJoinCancel) {
  ProcString s;
  s = s.append(ProcString::fork_sym(10, 1));
  s = s.append(ProcString::join_sym(10, 1));
  EXPECT_TRUE(s.empty());
}

TEST(ProcString, ForkJoinOfDifferentBranchDoesNotCancel) {
  ProcString s;
  s = s.append(ProcString::fork_sym(10, 1));
  s = s.append(ProcString::join_sym(10, 2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(ProcString, NetBetweenSharedPrefix) {
  ProcString a;
  a = a.append(ProcString::call_sym(1)).append(ProcString::call_sym(2));
  ProcString b;
  b = b.append(ProcString::call_sym(1)).append(ProcString::call_sym(3));
  const ProcString net = ProcString::net_between(a, b);
  // From inside c2 (under c1) to inside c3 (under c1): exit 2, enter 3.
  ASSERT_EQ(net.size(), 2u);
  EXPECT_EQ(net.syms()[0].kind, PSymKind::Ret);
  EXPECT_EQ(net.syms()[0].id, 2u);
  EXPECT_EQ(net.syms()[1].kind, PSymKind::Call);
  EXPECT_EQ(net.syms()[1].id, 3u);
}

TEST(ProcString, NetBetweenIdenticalIsEmpty) {
  ProcString a;
  a = a.append(ProcString::call_sym(7));
  EXPECT_TRUE(ProcString::net_between(a, a).empty());
}

TEST(ProcString, DescendsOnly) {
  ProcString a;  // birth point
  ProcString b = a.append(ProcString::call_sym(1)).append(ProcString::fork_sym(5, 0));
  EXPECT_TRUE(ProcString::net_between(a, b).descends_only());
  // Moving up (a ret appears in the net) is not descending.
  EXPECT_FALSE(ProcString::net_between(b, a).descends_only());
}

TEST(ProcString, CrossesThread) {
  ProcString a;
  ProcString b = a.append(ProcString::fork_sym(5, 0));
  EXPECT_TRUE(ProcString::net_between(a, b).crosses_thread());
  ProcString c = a.append(ProcString::call_sym(1));
  EXPECT_FALSE(ProcString::net_between(a, c).crosses_thread());
}

TEST(ProcString, IsPrefixOf) {
  ProcString a;
  ProcString b = a.append(ProcString::call_sym(1));
  ProcString c = b.append(ProcString::fork_sym(2, 0));
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_TRUE(b.is_prefix_of(c));
  EXPECT_TRUE(b.is_prefix_of(b));
  EXPECT_FALSE(c.is_prefix_of(b));
}

TEST(ProcString, KLimiting) {
  ProcString s;
  for (std::uint32_t i = 0; i < 10; ++i) s = s.append(ProcString::call_sym(i));
  const ProcString k = s.k_limited(3);
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k.syms()[0].id, 7u);
  EXPECT_EQ(k.syms()[2].id, 9u);
  EXPECT_EQ(s.k_limited(100), s);
}

TEST(ProcString, HashAndEquality) {
  ProcString a;
  a = a.append(ProcString::call_sym(1));
  ProcString b;
  b = b.append(ProcString::call_sym(1));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b = b.append(ProcString::call_sym(2));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace copar::sem
