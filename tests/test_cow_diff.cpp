// Differential pin of observable engine behavior across the COW state
// representation (ISSUE 9).
//
// The copy-on-write Configuration must be a pure representation change:
// every engine's terminal-key set, violations, faults, deadlock verdict,
// and the rendered `check` diagnostics must stay byte-identical. These
// goldens were recorded against the pre-COW deep-copy engine (commit
// 8a8590c) and the matrix re-runs on every build:
//
//     samples × {Full, Stubborn} × {coarsen off/on} × {threads 1, 4}
//
// plus one `check` battery digest per sample. Regenerate (only when an
// *intentional* semantic change lands) with:
//
//     COPAR_UPDATE_GOLDENS=1 ./build/tests/test_cow_diff
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/check.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/sem/step.h"
#include "src/support/fingerprint.h"

namespace copar {
namespace {

namespace fs = std::filesystem;

std::string fp_hex(const support::Fingerprint& fp) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return buf;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Digest of everything the exploration observably computes: the sorted
/// terminal canonical keys (length-prefixed — byte-identity, not just
/// set-cardinality), violations, faults, and the deadlock verdict.
std::string explore_digest(const explore::ExploreResult& r) {
  support::Fp128Hasher h;
  const auto keys = r.terminal_keys();
  h.u32(static_cast<std::uint32_t>(keys.size()));
  for (const std::string& k : keys) {
    h.u32(static_cast<std::uint32_t>(k.size()));
    for (const char c : k) h.u8(static_cast<std::uint8_t>(c));
  }
  h.u32(static_cast<std::uint32_t>(r.violations.size()));
  for (const std::uint32_t v : r.violations) h.u32(v);
  h.u32(static_cast<std::uint32_t>(r.faults.size()));
  for (const auto& [stmt, kind] : r.faults) {
    h.u32(stmt);
    h.u8(kind);
  }
  h.u8(r.deadlock_found ? 1 : 0);
  return fp_hex(h.finalize());
}

/// Digest of the full rendered `check` text output (diagnostics including
/// witness schedules), byte for byte.
std::string check_digest(const CompiledProgram& prog, const std::string& source,
                         const std::string& name) {
  DiagnosticEngine engine;
  (void)check::run_checks(prog, engine, {});
  std::ostringstream os;
  engine.render_text(os, source, name);
  const std::string text = os.str();
  support::Fp128Hasher h;
  h.u32(static_cast<std::uint32_t>(text.size()));
  for (const char c : text) h.u8(static_cast<std::uint8_t>(c));
  return fp_hex(h.finalize());
}

constexpr std::uint64_t kBudget = 300000;

struct Matrix {
  /// "<sample> <cell>" -> digest ("truncated" for over-budget cells, which
  /// stay pinned as truncated so a budget change is visible too).
  std::map<std::string, std::string> rows;
};

Matrix compute_matrix() {
  Matrix m;
  const fs::path dir = COPAR_SAMPLES_DIR;
  std::vector<fs::path> sample_paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cop") sample_paths.push_back(entry.path());
  }
  std::sort(sample_paths.begin(), sample_paths.end());
  for (const fs::path& path : sample_paths) {
    const std::string name = path.filename().string();
    const std::string source = read_file(path);
    const auto prog = compile(source);
    for (const explore::Reduction red :
         {explore::Reduction::Full, explore::Reduction::Stubborn}) {
      for (const bool coarsen : {false, true}) {
        for (const unsigned threads : {1u, 4u}) {
          explore::ExploreOptions opts;
          opts.reduction = red;
          opts.coarsen = coarsen;
          opts.threads = threads;
          opts.max_configs = kBudget;
          const explore::ExploreResult r = explore::explore(*prog->lowered, opts);
          std::string cell = std::string(red == explore::Reduction::Full ? "full" : "stubborn");
          cell += coarsen ? "+coarsen" : "";
          cell += " t" + std::to_string(threads);
          m.rows[name + " " + cell] = r.truncated ? "truncated" : explore_digest(r);
        }
      }
    }
    m.rows[name + " check"] = check_digest(*prog, source, name);
  }
  return m;
}

fs::path golden_path() { return fs::path(COPAR_GOLDENS_DIR) / "cow_diff.golden"; }

TEST(CowDifferential, EngineMatrixMatchesPreCowGoldens) {
  const Matrix m = compute_matrix();
  ASSERT_FALSE(m.rows.empty());

  if (std::getenv("COPAR_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    for (const auto& [key, digest] : m.rows) out << key << ' ' << digest << '\n';
    GTEST_SKIP() << "goldens regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with COPAR_UPDATE_GOLDENS=1 to create)";
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.rfind(' ');
    ASSERT_NE(pos, std::string::npos) << "malformed golden line: " << line;
    golden[line.substr(0, pos)] = line.substr(pos + 1);
  }
  // Every golden row must be reproduced exactly, and no row may disappear
  // (a vanished sample or cell would silently shrink coverage).
  for (const auto& [key, digest] : golden) {
    const auto it = m.rows.find(key);
    ASSERT_NE(it, m.rows.end()) << "golden row no longer computed: " << key;
    EXPECT_EQ(it->second, digest) << "engine output changed for: " << key;
  }
  for (const auto& [key, digest] : m.rows) {
    EXPECT_TRUE(golden.contains(key)) << "new unpinned row (update goldens): " << key;
  }
}

// A successor must never alias its parent's identity: mutating the child
// through the COW seam may not write through shared structure into the
// parent, and the child's canonical identity must be its own.
TEST(CowDifferential, SharedThenMutatedConfigNeverAliasesParent) {
  const auto prog = compile(R"(
    var a = 0;
    var b;
    fun main() {
      b = alloc(4);
      cobegin { a = a + 1; b[0] = 7; } || { a = a + 2; b[1] = 9; } coend;
      assert(a != 0);
    }
  )");
  sem::Configuration root = sem::Configuration::initial(*prog->lowered);
  const std::string root_key = root.canonical_key();
  const auto root_fp = root.canonical_fingerprint();

  // Walk a deterministic schedule; at every step the parent's key must be
  // unaffected by the child's creation and mutation, and key <-> fingerprint
  // must stay in lockstep on both sides.
  sem::Configuration cur = root;
  for (int steps = 0; steps < 1000; ++steps) {
    sem::Pid fire = sem::kNoPid;
    for (sem::Pid pid = 0; pid < cur.processes.size(); ++pid) {
      if (!cur.processes[pid].live()) continue;
      const sem::ActionInfo info = sem::action_info(cur, pid);
      if (info.exists && info.enabled) {
        fire = pid;
        break;
      }
    }
    if (fire == sem::kNoPid) break;
    const std::string parent_key = cur.canonical_key();
    sem::Configuration child = sem::apply_action(cur, fire);
    // The parent is bit-for-bit untouched by the child's mutations.
    EXPECT_EQ(cur.canonical_key(), parent_key);
    EXPECT_EQ(cur.canonical_fingerprint(), sem::Configuration(cur).canonical_fingerprint());
    // The child has its own identity (every action here changes state).
    EXPECT_NE(child.canonical_key(), parent_key);
    EXPECT_NE(child.canonical_fingerprint(), cur.canonical_fingerprint());
    cur = std::move(child);
  }
  EXPECT_EQ(root.canonical_key(), root_key);
  EXPECT_EQ(root.canonical_fingerprint(), root_fp);
}

}  // namespace
}  // namespace copar
