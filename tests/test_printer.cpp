#include <gtest/gtest.h>

#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace copar::lang {
namespace {

/// print(parse(print(parse(src)))) == print(parse(src)) — printing reaches a
/// fixpoint after one round trip.
void roundtrip(std::string_view src) {
  DiagnosticEngine d1;
  auto m1 = parse_program(src, d1);
  ASSERT_FALSE(d1.has_errors()) << d1.to_string();
  const std::string printed = print(*m1);

  DiagnosticEngine d2;
  auto m2 = parse_program(printed, d2);
  ASSERT_FALSE(d2.has_errors()) << "reparse failed:\n" << d2.to_string() << "\nsource:\n"
                                << printed;
  EXPECT_EQ(print(*m2), printed);
}

TEST(Printer, RoundTripGlobals) { roundtrip("var a; var b = 1 + 2 * 3;"); }

TEST(Printer, RoundTripFunctions) {
  roundtrip("fun f(a, b) { return a + b; } fun main() { skip; }");
}

TEST(Printer, RoundTripControlFlow) {
  roundtrip(R"(
    var x;
    fun main() {
      if (x > 0) { x = 1; } else { x = 2; }
      while (x < 10) { x = x + 1; }
    }
  )");
}

TEST(Printer, RoundTripCobegin) {
  roundtrip(R"(
    var x; var y;
    fun main() {
      cobegin { x = 1; } || { y = 2; } coend;
    }
  )");
}

TEST(Printer, RoundTripPointers) {
  roundtrip(R"(
    var p; var x;
    fun main() {
      p = alloc(2);
      *p = 1;
      p[1] = 2;
      x = *p + p[1];
      p = &x;
    }
  )");
}

TEST(Printer, RoundTripLabelsAndLocks) {
  roundtrip(R"(
    var m; var x;
    fun main() {
      s1: lock(m);
      s2: x = 1;
      s3: unlock(m);
      assert(x == 1);
    }
  )");
}

TEST(Printer, RoundTripLambdas) {
  roundtrip(R"(
    var g;
    fun main() {
      var k;
      g = fun (a) { return a + 1; };
      k = g(1);
    }
  )");
}

TEST(Printer, RoundTripCallsAndReturns) {
  roundtrip(R"(
    var x;
    fun f(a) { return a; }
    fun main() { x = f(3); f(4); return; }
  )");
}

TEST(Printer, ExprPrintIsFullyParenthesized) {
  DiagnosticEngine d;
  auto m = parse_program("var x; fun main() { x = 1 + 2 * 3; }", d);
  ASSERT_FALSE(d.has_errors());
  const auto& assign = stmt_cast<AssignStmt>(*m->find_function("main")->body().stmts()[0]);
  EXPECT_EQ(print_expr(*m, assign.rhs()), "(1 + (2 * 3))");
}

TEST(Printer, LabelsArePrinted) {
  DiagnosticEngine d;
  auto m = parse_program("var x; fun main() { s9: x = 1; }", d);
  ASSERT_FALSE(d.has_errors());
  EXPECT_NE(print(*m).find("s9: "), std::string::npos);
}

}  // namespace
}  // namespace copar::lang
