// Expression evaluation, exercised through whole-program runs under a
// deterministic schedule (run_deterministic fires the lowest enabled pid).
#include <gtest/gtest.h>

#include "src/sem/eval.h"
#include "tests/testutil.h"

namespace copar::sem {
namespace {

using testutil::global_int;
using testutil::run_source;

std::int64_t eval_to(std::string_view expr_src) {
  const CompiledProgram* prog = nullptr;
  const std::string src = "var r; fun main() { r = " + std::string(expr_src) + "; }";
  const Configuration cfg = run_source(src, prog);
  return global_int(cfg, "r");
}

TEST(Eval, Arithmetic) {
  EXPECT_EQ(eval_to("1 + 2 * 3"), 7);
  EXPECT_EQ(eval_to("10 - 4 - 3"), 3);
  EXPECT_EQ(eval_to("7 / 2"), 3);
  EXPECT_EQ(eval_to("7 % 3"), 1);
  EXPECT_EQ(eval_to("-5 + 2"), -3);
}

TEST(Eval, Comparisons) {
  EXPECT_EQ(eval_to("1 < 2"), 1);
  EXPECT_EQ(eval_to("2 <= 2"), 1);
  EXPECT_EQ(eval_to("3 > 4"), 0);
  EXPECT_EQ(eval_to("3 >= 4"), 0);
  EXPECT_EQ(eval_to("5 == 5"), 1);
  EXPECT_EQ(eval_to("5 != 5"), 0);
}

TEST(Eval, Logical) {
  EXPECT_EQ(eval_to("1 and 0"), 0);
  EXPECT_EQ(eval_to("1 or 0"), 1);
  EXPECT_EQ(eval_to("not 0"), 1);
  EXPECT_EQ(eval_to("not 3"), 0);
  EXPECT_EQ(eval_to("true and not false"), 1);
}

TEST(Eval, NullComparisons) {
  EXPECT_EQ(eval_to("null == null"), 1);
  EXPECT_EQ(eval_to("null == 0"), 0);
}

TEST(Eval, GlobalInitializers) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source("var a = 2; var b = a * 3; fun main() { skip; }", prog);
  EXPECT_EQ(global_int(cfg, "a"), 2);
  EXPECT_EQ(global_int(cfg, "b"), 6);
}

TEST(Eval, PointersThroughAllocation) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun main() {
      var p = alloc(3);
      *p = 10;
      p[1] = 20;
      p[2] = p[0] + p[1];
      r = *(p + 2);
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 30);
}

TEST(Eval, AddressOfVariable) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var x; var r;
    fun main() {
      var q = &x;
      *q = 5;
      r = x;
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 5);
}

TEST(Eval, DivisionByZeroFaults) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source("var r; fun main() { r = 1 / 0; }", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::DivByZero);
}

TEST(Eval, NullDerefFaults) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source("var p; var r; fun main() { p = null; r = *p; }", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::DerefNull);
}

TEST(Eval, OutOfBoundsFaults) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun main() { var p = alloc(1); r = p[5]; }
  )", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::OutOfBounds);
}

TEST(Eval, TypeErrorOnPointerArithmeticMisuse) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun main() { var p = alloc(1); r = p * 2; }
  )", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::TypeError);
}

TEST(Eval, ReadSetCollection) {
  auto prog = compile(R"(
    var a = 1; var b = 2; var c;
    fun main() { c = a + b; }
  )");
  Configuration cfg = Configuration::initial(*prog->lowered);
  const ActionInfo info = action_info(cfg, 0);
  ASSERT_TRUE(info.exists);
  // Reads a and b (global cells), writes c.
  EXPECT_EQ(info.reads.count(), 2u);
  EXPECT_EQ(info.writes.count(), 1u);
}

TEST(Eval, PointerEquality) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r1; var r2;
    fun main() {
      var p = alloc(2);
      var q = p;
      r1 = p == q;
      r2 = p == p + 1;
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r1"), 1);
  EXPECT_EQ(global_int(cfg, "r2"), 0);
}

}  // namespace
}  // namespace copar::sem
