// Property-based tests over generated random programs.
//
// The full exploration is the oracle:
//   P1. stubborn-set exploration preserves the exact set of result
//       configurations, deadlocks, violations, and faults;
//   P2. virtual coarsening preserves them too;
//   P3. the combination preserves them;
//   P4. abstract MHP over-approximates concrete co-enabledness;
//   P5. abstract per-proc side effects over-approximate the concrete
//       access log (modulo the heap-offset folding of abstract locations).
#include <gtest/gtest.h>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/sem/program.h"
#include "src/workload/random_programs.h"

namespace copar {
namespace {

absem::AbsLoc abs_of(const explore::LocKey& key) {
  switch (key.kind) {
    case sem::ObjKind::Globals: return absem::AbsLoc::global(key.off);
    case sem::ObjKind::Frame: return absem::AbsLoc::frame(key.site, key.off);
    case sem::ObjKind::Heap: return absem::AbsLoc::heap(key.site);
  }
  return absem::AbsLoc::global(0);
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, ReductionsPreserveResults) {
  const std::string src = workload::random_program(GetParam());
  SCOPED_TRACE(src);
  auto prog = compile(src);

  explore::ExploreOptions full_opts;
  full_opts.max_configs = 300000;
  const auto full = explore::explore(*prog->lowered, full_opts);
  ASSERT_FALSE(full.truncated) << "oracle run truncated; shrink the generator";

  for (const bool coarsen : {false, true}) {
    for (const auto reduction : {explore::Reduction::Full, explore::Reduction::Stubborn}) {
      if (reduction == explore::Reduction::Full && !coarsen) continue;  // oracle itself
      explore::ExploreOptions opts;
      opts.reduction = reduction;
      opts.coarsen = coarsen;
      opts.max_configs = 300000;
      const auto r = explore::explore(*prog->lowered, opts);
      SCOPED_TRACE(std::string("reduction=") +
                   (reduction == explore::Reduction::Stubborn ? "stubborn" : "full") +
                   " coarsen=" + (coarsen ? "yes" : "no"));
      EXPECT_EQ(r.terminal_keys(), full.terminal_keys());
      EXPECT_EQ(r.deadlock_found, full.deadlock_found);
      EXPECT_EQ(r.violations, full.violations);
      EXPECT_EQ(r.faults, full.faults);
      EXPECT_LE(r.num_configs, full.num_configs);
    }
  }
}

TEST_P(RandomPrograms, SleepSetsPreserveResults) {
  const std::string src = workload::random_program(GetParam());
  SCOPED_TRACE(src);
  auto prog = compile(src);

  explore::ExploreOptions full_opts;
  full_opts.max_configs = 300000;
  const auto full = explore::explore(*prog->lowered, full_opts);
  ASSERT_FALSE(full.truncated);

  for (const auto reduction : {explore::Reduction::Full, explore::Reduction::Stubborn}) {
    explore::ExploreOptions opts;
    opts.reduction = reduction;
    opts.sleep_sets = true;
    opts.max_configs = 300000;
    const auto r = explore::explore(*prog->lowered, opts);
    SCOPED_TRACE(reduction == explore::Reduction::Stubborn ? "stubborn+sleep" : "full+sleep");
    EXPECT_EQ(r.terminal_keys(), full.terminal_keys());
    EXPECT_EQ(r.deadlock_found, full.deadlock_found);
    EXPECT_EQ(r.violations, full.violations);
    EXPECT_EQ(r.faults, full.faults);
    // Sleep sets prune transitions, never states beyond the other
    // reductions; edges must not exceed the full run's.
    EXPECT_LE(r.num_transitions, full.num_transitions);
  }
}

TEST_P(RandomPrograms, PrinterRoundTripsGeneratedPrograms) {
  const std::string src = workload::random_program(GetParam());
  SCOPED_TRACE(src);
  auto m1 = lang::parse_program(src);
  const std::string printed = lang::print(*m1);
  auto m2 = lang::parse_program(printed);
  EXPECT_EQ(lang::print(*m2), printed);
}

TEST_P(RandomPrograms, AbstractMhpOverapproximatesConcrete) {
  const std::string src = workload::random_program(GetParam());
  SCOPED_TRACE(src);
  auto prog = compile(src);

  explore::ExploreOptions opts;
  opts.record_pairs = true;
  opts.max_configs = 300000;
  const auto concrete = explore::explore(*prog->lowered, opts);
  ASSERT_FALSE(concrete.truncated);

  absem::AbsExplorer<absdom::FlatInt> engine(*prog->lowered, absem::AbsOptions{});
  const auto abs = engine.run();
  ASSERT_FALSE(abs.truncated);

  for (const auto& [pair, facts] : concrete.pairs) {
    if (!facts.co_enabled) continue;
    EXPECT_TRUE(abs.mhp.contains(pair))
        << "lost concrete MHP pair (" << pair.first << "," << pair.second << ")";
  }
}

TEST_P(RandomPrograms, AbstractEffectsCoverConcreteAccesses) {
  const std::string src = workload::random_program(GetParam());
  SCOPED_TRACE(src);
  auto prog = compile(src);

  explore::ExploreOptions opts;
  opts.record_accesses = true;
  opts.max_configs = 300000;
  const auto concrete = explore::explore(*prog->lowered, opts);
  ASSERT_FALSE(concrete.truncated);

  absem::AbsExplorer<absdom::FlatInt> engine(*prog->lowered, absem::AbsOptions{});
  const auto abs = engine.run();

  for (const auto& [proc, sets] : concrete.accesses.by_proc) {
    auto [abs_reads, abs_writes] = abs.effects_of(proc);
    for (const explore::LocKey& key : sets.reads) {
      const absem::AbsLoc loc = abs_of(key);
      if (loc.kind == absem::AbsLoc::Kind::Frame && loc.b == 0) continue;  // static links
      EXPECT_TRUE(abs_reads.contains(loc))
          << "proc " << prog->lowered->proc(proc).name << " concrete read of "
          << loc.to_string() << " missing abstractly";
    }
    for (const explore::LocKey& key : sets.writes) {
      const absem::AbsLoc loc = abs_of(key);
      if (loc.kind == absem::AbsLoc::Kind::Frame && loc.b == 0) continue;
      EXPECT_TRUE(abs_writes.contains(loc))
          << "proc " << prog->lowered->proc(proc).name << " concrete write of "
          << loc.to_string() << " missing abstractly";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 41));

// A second corpus with three branches and heavier pointer use.
class WideRandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WideRandomPrograms, ReductionsPreserveResults) {
  workload::RandomOptions gen;
  gen.num_branches = 3;
  gen.max_branch_stmts = 3;
  const std::string src = workload::random_program(GetParam(), gen);
  SCOPED_TRACE(src);
  auto prog = compile(src);

  explore::ExploreOptions full_opts;
  full_opts.max_configs = 500000;
  const auto full = explore::explore(*prog->lowered, full_opts);
  ASSERT_FALSE(full.truncated);

  explore::ExploreOptions stub_opts;
  stub_opts.reduction = explore::Reduction::Stubborn;
  stub_opts.coarsen = true;
  stub_opts.max_configs = 500000;
  const auto r = explore::explore(*prog->lowered, stub_opts);
  EXPECT_EQ(r.terminal_keys(), full.terminal_keys());
  EXPECT_EQ(r.deadlock_found, full.deadlock_found);
  EXPECT_EQ(r.violations, full.violations);
  EXPECT_EQ(r.faults, full.faults);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideRandomPrograms,
                         ::testing::Range<std::uint64_t>(100, 120));

// A third corpus with doall in the mix.
class DoallRandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoallRandomPrograms, ReductionsPreserveResultsAndAbstractCovers) {
  workload::RandomOptions gen;
  gen.use_doall = true;
  gen.max_branch_stmts = 3;
  const std::string src = workload::random_program(GetParam(), gen);
  SCOPED_TRACE(src);
  auto prog = compile(src);

  explore::ExploreOptions full_opts;
  full_opts.record_pairs = true;
  full_opts.max_configs = 500000;
  const auto full = explore::explore(*prog->lowered, full_opts);
  ASSERT_FALSE(full.truncated);

  explore::ExploreOptions stub_opts;
  stub_opts.reduction = explore::Reduction::Stubborn;
  stub_opts.coarsen = true;
  stub_opts.max_configs = 500000;
  const auto r = explore::explore(*prog->lowered, stub_opts);
  EXPECT_EQ(r.terminal_keys(), full.terminal_keys());
  EXPECT_EQ(r.deadlock_found, full.deadlock_found);
  EXPECT_EQ(r.violations, full.violations);
  EXPECT_EQ(r.faults, full.faults);

  absem::AbsExplorer<absdom::FlatInt> engine(*prog->lowered, absem::AbsOptions{});
  const auto abs = engine.run();
  ASSERT_FALSE(abs.truncated);
  for (const auto& [pair, facts] : full.pairs) {
    if (!facts.co_enabled) continue;
    EXPECT_TRUE(abs.mhp.contains(pair))
        << "lost concrete MHP pair (" << pair.first << "," << pair.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoallRandomPrograms,
                         ::testing::Range<std::uint64_t>(200, 225));

}  // namespace
}  // namespace copar
