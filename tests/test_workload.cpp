// Workload generators: the paper examples compile and behave as described,
// dining philosophers deadlocks exactly when all are right-handed, and the
// random generator is deterministic.
#include <gtest/gtest.h>

#include "src/analysis/common.h"
#include "src/analysis/mhp.h"
#include "src/explore/explorer.h"
#include "src/explore/witness.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"
#include "src/workload/random_programs.h"

namespace copar::workload {
namespace {

explore::ExploreResult run(std::string_view src, explore::Reduction red,
                           std::unique_ptr<CompiledProgram>& keep) {
  keep = compile(src);
  explore::ExploreOptions opts;
  opts.reduction = red;
  return explore::explore(*keep->lowered, opts);
}

TEST(Workload, AllPaperExamplesCompile) {
  for (const std::string& src :
       {fig2_shasha_snir(), fig3_two_threads(), fig5_locality(), example8_pointers(),
        example15_calls(), placement_b1_b2(), busy_wait_flag(), producer_consumer()}) {
    EXPECT_NO_THROW({ auto p = compile(src); }) << src;
  }
}

TEST(Workload, ProducerConsumerDeliversTheItem) {
  std::unique_ptr<CompiledProgram> keep;
  const auto r = run(producer_consumer(), explore::Reduction::Full, keep);
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_EQ(r.terminal_int_values("got"), (std::set<std::int64_t>{42}));
}

TEST(Workload, Example8TerminatesWithCopiedValue) {
  std::unique_ptr<CompiledProgram> keep;
  const auto r = run(example8_pointers(), explore::Reduction::Full, keep);
  ASSERT_EQ(r.terminals.size(), 1u);
  const auto& cfg = r.terminals.begin()->second.config;
  // *x == *y == 10 at the end; x and y hold pointers.
  EXPECT_TRUE(cfg.global_value("x")->is_ptr());
  EXPECT_TRUE(cfg.global_value("y")->is_ptr());
}

TEST(Workload, Fig5Reproduces13Configurations) {
  // The paper's Figure 5 claim: stubborn sets reduce the space to 13
  // configurations while producing exactly the same result-configurations.
  std::unique_ptr<CompiledProgram> keep1;
  std::unique_ptr<CompiledProgram> keep2;
  const auto full = run(fig5_locality(), explore::Reduction::Full, keep1);
  const auto stub = run(fig5_locality(), explore::Reduction::Stubborn, keep2);
  EXPECT_EQ(full.num_configs, 16u);
  EXPECT_EQ(stub.num_configs, 13u);
  EXPECT_EQ(full.terminal_keys(), stub.terminal_keys());
}

TEST(Philosophers, RightHandedDeadlocks) {
  for (std::size_t n : {2u, 3u}) {
    std::unique_ptr<CompiledProgram> keep;
    const auto r = run(dining_philosophers(n), explore::Reduction::Full, keep);
    EXPECT_TRUE(r.deadlock_found) << "n=" << n;
  }
}

TEST(Philosophers, LeftHandedVariantIsDeadlockFree) {
  for (std::size_t n : {2u, 3u}) {
    std::unique_ptr<CompiledProgram> keep;
    const auto r = run(dining_philosophers(n, /*left_handed=*/true),
                       explore::Reduction::Full, keep);
    EXPECT_FALSE(r.deadlock_found) << "n=" << n;
    // Every completion terminal has each philosopher eating exactly once.
    for (const auto& [key, t] : r.terminals) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(t.config.global_value("meals" + std::to_string(i))->as_int(), 1);
      }
    }
  }
}

TEST(Philosophers, StubbornPreservesTerminalsAndShrinksSpace) {
  for (const bool left : {false, true}) {
    std::unique_ptr<CompiledProgram> keep1;
    std::unique_ptr<CompiledProgram> keep2;
    const auto full = run(dining_philosophers(3, left), explore::Reduction::Full, keep1);
    const auto stub = run(dining_philosophers(3, left), explore::Reduction::Stubborn, keep2);
    EXPECT_EQ(full.terminal_keys(), stub.terminal_keys());
    EXPECT_EQ(full.deadlock_found, stub.deadlock_found);
    EXPECT_LT(stub.num_configs, full.num_configs);
  }
}

TEST(Peterson, MutualExclusionVerified) {
  // The paper's motivating program class: shared-variable mutual exclusion.
  // Full exploration proves the critical-section assertion can never fail.
  std::unique_ptr<CompiledProgram> keep;
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  keep = compile(peterson_mutex());
  const auto r = explore::explore(*keep->lowered, opts);
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(r.violations.empty()) << "mutual exclusion violated!";
  EXPECT_FALSE(r.deadlock_found);
  // Both threads complete on some path.
  EXPECT_TRUE(r.terminal_int_values("done0").contains(1));
  EXPECT_TRUE(r.terminal_int_values("done1").contains(1));
  // The two critical sections are never co-enabled.
  const analysis::Mhp mhp = analysis::mhp_from(r);
  EXPECT_EQ(mhp.parallel(*keep->lowered, "sCS0", "sCS1"), analysis::MhpAnswer::No);
}

TEST(Peterson, BrokenProtocolViolatesExclusion) {
  std::unique_ptr<CompiledProgram> keep;
  const auto r = run(peterson_broken(), explore::Reduction::Full, keep);
  EXPECT_FALSE(r.violations.empty());  // both threads meet in the CS
}

TEST(Peterson, StubbornPreservesTheProof) {
  std::unique_ptr<CompiledProgram> keep1;
  std::unique_ptr<CompiledProgram> keep2;
  const auto full = run(peterson_mutex(), explore::Reduction::Full, keep1);
  const auto stub = run(peterson_mutex(), explore::Reduction::Stubborn, keep2);
  EXPECT_EQ(full.terminal_keys(), stub.terminal_keys());
  EXPECT_TRUE(stub.violations.empty());
  EXPECT_EQ(full.violations, stub.violations);
}

TEST(Peterson, WitnessForBrokenProtocol) {
  auto keep = compile(peterson_broken());
  explore::WitnessQuery q;
  const auto cs0 = analysis::labeled_stmt(*keep->lowered, "sCS0");
  ASSERT_TRUE(cs0.has_value());
  q.want_violation = *cs0;
  const auto w = explore::find_witness(*keep->lowered, q);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->terminal.violations.contains(*cs0));
}

TEST(RandomGen, DeterministicInSeed) {
  EXPECT_EQ(random_program(7), random_program(7));
  EXPECT_NE(random_program(7), random_program(8));
}

TEST(RandomGen, ProducesCompilablePrograms) {
  for (std::uint64_t seed = 500; seed < 530; ++seed) {
    const std::string src = random_program(seed);
    EXPECT_NO_THROW({ auto p = compile(src); }) << "seed " << seed << ":\n" << src;
  }
}

}  // namespace
}  // namespace copar::workload
