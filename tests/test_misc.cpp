// Cross-cutting coverage: clan folding's trip-count independence, closures
// shared between threads, debug renderers, and the exposed Petri stubborn
// closure.
#include <gtest/gtest.h>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/petri/models.h"
#include "src/petri/reach.h"
#include "src/sem/program.h"

namespace copar {
namespace {

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

std::string doall_src(int n) {
  return R"(
    var x; var n = )" + std::to_string(n) + R"(;
    fun main() {
      doall (i = 1 .. n) { x = x + i; }
    }
  )";
}

TEST(ClanFolding, StatesIndependentOfTripCount) {
  // McDowell's point: the clan abstraction does not care how many instances
  // run the same code. Concretely the state count grows with n; abstractly
  // (Clan and even Tree, thanks to the ω point) it is constant.
  std::uint64_t abs3 = 0;
  std::uint64_t abs12 = 0;
  std::uint64_t conc3 = 0;
  std::uint64_t conc6 = 0;
  {
    const auto& p = compiled(doall_src(3));
    absem::AbsOptions opts;
    opts.folding = absem::Folding::Clan;
    abs3 = absem::AbsExplorer<absdom::FlatInt>(*p.lowered, opts).run().num_states;
    conc3 = explore::explore(*p.lowered, {}).num_configs;
  }
  {
    const auto& p = compiled(doall_src(12));
    absem::AbsOptions opts;
    opts.folding = absem::Folding::Clan;
    abs12 = absem::AbsExplorer<absdom::FlatInt>(*p.lowered, opts).run().num_states;
  }
  {
    const auto& p = compiled(doall_src(6));
    conc6 = explore::explore(*p.lowered, {}).num_configs;
  }
  EXPECT_EQ(abs3, abs12);     // trip-count independent
  EXPECT_GT(conc6, 4 * conc3);  // concrete explodes
}

TEST(Closures, SharedBetweenThreads) {
  // A closure created by main is invoked concurrently by both branches;
  // the captured counter sees both increments under some interleaving.
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var count = 0;
      var bump = fun () { var t; t = count; count = t + 1; return 0; };
      cobegin { var z1; z1 = bump(); } || { var z2; z2 = bump(); } coend;
      r = count;
    }
  )");
  const auto full = explore::explore(*p.lowered, {});
  // Racy read-modify-write inside the closure: 1 (lost update) and 2.
  EXPECT_EQ(full.terminal_int_values("r"), (std::set<std::int64_t>{1, 2}));
  // Reductions preserve this.
  explore::ExploreOptions stub;
  stub.reduction = explore::Reduction::Stubborn;
  stub.coarsen = true;
  stub.sleep_sets = true;
  const auto reduced = explore::explore(*p.lowered, stub);
  EXPECT_EQ(reduced.terminal_keys(), full.terminal_keys());
}

TEST(Closures, LambdaInsideDoall) {
  // Each doall instance builds a closure over its own index frame; the
  // accumulating update is a single atomic action, so the sum of squares is
  // deterministic across all interleavings.
  const auto& p = compiled(R"(
    var m; var total;
    fun main() {
      doall (i = 1 .. 3) {
        var sq = fun () { return i * i; };
        var v;
        v = sq();
        lock(m);
        total = total + v;
        unlock(m);
      }
      sEnd: assert(total == 14);
    }
  )");
  const auto r = explore::explore(*p.lowered, {});
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.terminal_int_values("total"), (std::set<std::int64_t>{14}));
}

TEST(Debug, ConfigurationToStringMentionsProcesses) {
  const auto& p = compiled(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; }
  )");
  sem::Configuration cfg = sem::Configuration::initial(*p.lowered);
  cfg = sem::apply_action(cfg, 0);  // fork
  const std::string text = cfg.to_string();
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("p1"), std::string::npos);
  EXPECT_NE(text.find("p2"), std::string::npos);
  EXPECT_NE(text.find("globals"), std::string::npos);
}

TEST(Debug, DescribePointUsesLabels) {
  const auto& p = compiled(R"(
    var x;
    fun main() { sHello: x = 1; }
  )");
  const std::string desc = p.lowered->describe_point(p.lowered->entry_proc(), 0);
  EXPECT_NE(desc.find("main+0"), std::string::npos);
  EXPECT_NE(desc.find("sHello"), std::string::npos);
}

TEST(Debug, DisassembleShowsDoall) {
  const auto& p = compiled(R"(
    var x;
    fun main() { doall (i = 0 .. 2) { x = x + i; } }
  )");
  const std::string dis = p.lowered->disassemble();
  EXPECT_NE(dis.find("forkrange"), std::string::npos);
  EXPECT_NE(dis.find("$doall"), std::string::npos);
}

TEST(PetriApi, StubbornSetExposed) {
  using namespace copar::petri;
  const PetriNet net = independent_producers_net(3);
  const std::vector<TransId> chosen = stubborn_set(net, net.initial_marking());
  // Fully independent components: a singleton suffices.
  EXPECT_EQ(chosen.size(), 1u);

  // Fork/join: the only enabled transition is the fork itself.
  const PetriNet fj = fork_join_net(4);
  const auto fj_set = stubborn_set(fj, fj.initial_marking());
  EXPECT_EQ(fj_set.size(), 1u);
}

TEST(Stats, ReductionCountersPopulated) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() { cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend; }
  )");
  explore::ExploreOptions opts;
  opts.reduction = explore::Reduction::Stubborn;
  opts.sleep_sets = true;
  const auto r = explore::explore(*p.lowered, opts);
  EXPECT_GT(r.stats.get("stubborn_steps"), 0u);
  EXPECT_EQ(r.stats.get("configs"), r.num_configs);
  EXPECT_EQ(r.stats.get("transitions"), r.num_transitions);
}

}  // namespace
}  // namespace copar

// NOTE: appended edge-case coverage.
#include "src/explore/witness.h"

namespace copar {
namespace {

TEST(Canonical, CyclicHeapStructuresHashAndCollect) {
  // A self-referential object and a 2-cycle: canonicalization must
  // terminate, and cyclic *garbage* must not affect state identity.
  const auto& p = compiled(R"(
    var keep; var x;
    fun main() {
      var a = alloc(1);
      var b = alloc(1);
      *a = b;
      *b = a;       // 2-cycle
      keep = a;
      sCut: keep = null;  // the cycle is now garbage
      x = 1;
    }
  )");
  const auto r = explore::explore(*p.lowered, {});
  ASSERT_EQ(r.terminals.size(), 1u);

  // A straight-line program with the same observable ending but no garbage
  // cycle reaches the identical canonical terminal.
  const auto& q = compiled(R"(
    var keep; var x;
    fun main() {
      var a = alloc(1);
      var b = alloc(1);
      *a = b;
      *b = a;
      keep = a;
      keep = null;
      x = 1;
    }
  )");
  const auto rq = explore::explore(*q.lowered, {});
  EXPECT_EQ(r.terminal_keys(), rq.terminal_keys());
}

TEST(Witness, TruncationReturnsNothing) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() { cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend; }
  )");
  explore::WitnessQuery q;
  q.want_deadlock = true;       // none exists
  q.explore.max_configs = 4;    // and we stop early anyway
  EXPECT_FALSE(explore::find_witness(*p.lowered, q).has_value());
}

TEST(DoAllNesting, DoallInsideDoall) {
  const auto& p = compiled(R"(
    var m; var total;
    fun main() {
      doall (i = 0 .. 1) {
        doall (j = 0 .. 1) {
          lock(m);
          total = total + (i * 2 + j);
          unlock(m);
        }
      }
    }
  )");
  const auto full = explore::explore(*p.lowered, {});
  // 0+1+2+3 = 6, atomically accumulated under the lock: deterministic.
  EXPECT_EQ(full.terminal_int_values("total"), (std::set<std::int64_t>{6}));
  explore::ExploreOptions stub;
  stub.reduction = explore::Reduction::Stubborn;
  const auto reduced = explore::explore(*p.lowered, stub);
  EXPECT_EQ(reduced.terminal_keys(), full.terminal_keys());
}

TEST(Faults, OutOfBoundsThroughDoallIndex) {
  const auto& p = compiled(R"(
    var a;
    fun main() {
      a = alloc(2);
      doall (i = 0 .. 2) { sW: a[i] = i; }   // i = 2 is out of bounds
    }
  )");
  const auto r = explore::explore(*p.lowered, {});
  ASSERT_FALSE(r.faults.empty());
  EXPECT_EQ(static_cast<sem::Fault>(r.faults.begin()->second), sem::Fault::OutOfBounds);
}

}  // namespace
}  // namespace copar
