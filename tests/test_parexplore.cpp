// Parallel frontier engine and exploration-bookkeeping regression tests.
//
// The correctness contract of the parallel engine is that it computes the
// same terminal-key set, deadlock verdict, violations, and faults as the
// sequential engine — the matrix test below pins that across reductions,
// coarsening, thread counts, and visited-set representations, using the
// sequential Full/exact-keys run as the oracle.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"

namespace copar::explore {
namespace {

TEST(ParExplore, MatrixMatchesSequentialOracle) {
  const std::vector<std::pair<std::string, std::string>> samples = {
      {"fig2", workload::fig2_shasha_snir()},
      {"fig5", workload::fig5_locality()},
      {"philosophers3", workload::dining_philosophers(3)},
  };
  for (const auto& [name, src] : samples) {
    SCOPED_TRACE(name);
    const auto prog = compile(src);

    ExploreOptions oracle_opts;
    oracle_opts.exact_keys = true;  // string-keyed baseline
    const ExploreResult oracle = explore(*prog->lowered, oracle_opts);
    ASSERT_FALSE(oracle.terminals.empty());

    for (const Reduction reduction : {Reduction::Full, Reduction::Stubborn}) {
      for (const bool coarsen : {false, true}) {
        for (const unsigned threads : {1u, 4u}) {
          for (const bool exact_keys : {false, true}) {
            SCOPED_TRACE((reduction == Reduction::Stubborn ? "stubborn" : "full") +
                         std::string(coarsen ? " coarsen" : "") + " threads=" +
                         std::to_string(threads) + (exact_keys ? " exact" : " fingerprint"));
            ExploreOptions opts;
            opts.reduction = reduction;
            opts.coarsen = coarsen;
            opts.threads = threads;
            opts.exact_keys = exact_keys;
            const ExploreResult r = explore(*prog->lowered, opts);
            EXPECT_FALSE(r.truncated);
            EXPECT_EQ(r.terminal_keys(), oracle.terminal_keys());
            EXPECT_EQ(r.deadlock_found, oracle.deadlock_found);
            EXPECT_EQ(r.violations, oracle.violations);
            EXPECT_EQ(r.faults, oracle.faults);
            // No fingerprint collisions on state spaces this small; in
            // fingerprint mode the counter is structurally zero.
            EXPECT_EQ(r.stats.gauge("fingerprint_collisions"), 0u);
          }
        }
      }
    }
  }
}

TEST(ParExplore, ConfigCountsMatchSequentialWithoutReduction) {
  // Under Full expansion the set of reachable configurations is
  // scheduling-independent, so the parallel engine must count exactly as
  // many distinct configurations as the sequential one.
  const auto prog = compile(workload::fig2_shasha_snir());
  ExploreOptions seq;
  const ExploreResult a = explore(*prog->lowered, seq);
  ExploreOptions par;
  par.threads = 4;
  const ExploreResult b = explore(*prog->lowered, par);
  EXPECT_EQ(b.num_configs, a.num_configs);
  EXPECT_EQ(b.num_transitions, a.num_transitions);
  EXPECT_EQ(b.stats.gauge("visited_configs"), a.stats.gauge("visited_configs"));
  EXPECT_EQ(b.stats.gauge("threads"), 4u);
}

TEST(ParExplore, TruncationTerminatesAndIsReported) {
  // A cap far below the state-space size must not hang the worker pool
  // (regression: the frontier drains instead of blocking forever).
  const auto prog = compile(workload::dining_philosophers(3));
  ExploreOptions opts;
  opts.threads = 4;
  opts.max_configs = 10;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.num_configs, 10u);
  EXPECT_GE(r.stats.get("truncated_transitions"), 1u);
}

TEST(ParExplore, RecordingPayloadsRequireSequentialEngine) {
  const auto prog = compile(workload::fig2_shasha_snir());
  ExploreOptions opts;
  opts.threads = 2;
  opts.record_graph = true;
  EXPECT_THROW(explore(*prog->lowered, opts), Error);
  opts.record_graph = false;
  opts.sleep_sets = true;
  EXPECT_THROW(explore(*prog->lowered, opts), Error);
}

// --- sequential bookkeeping regressions (the bugfixes in this PR) ---------

TEST(Explore, TruncationKeepsTransitionEdgeInvariant) {
  // Regression: hitting max_configs used to leave the dropped successor's
  // transition counted, breaking graph.edges.size() == num_transitions.
  const auto prog = compile(R"(
    var x; var y;
    fun main() { cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend; }
  )");
  ExploreOptions opts;
  opts.record_graph = true;
  opts.max_configs = 3;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.num_configs, 3u);
  EXPECT_EQ(r.graph.edges.size(), r.num_transitions);
  EXPECT_EQ(r.stats.get("truncated_transitions"), 1u);
  // The dropped successor is also withdrawn from the visited set.
  EXPECT_EQ(r.stats.gauge("visited_configs"), r.num_configs);
}

TEST(Explore, CoarsenGuardCapIsCountedNotSilent) {
  // A straight-line run of > kCoarsenGuardMax non-critical actions forces
  // the coarsening guard to trip; the hit must surface as a counter
  // (regression: the cap used to be silent).
  std::string src = "var done;\nfun main() {\n  var t;\n  t = 0;\n";
  for (int i = 0; i < kCoarsenGuardMax + 50; ++i) src += "  t = t + 1;\n";
  src += "  done = 1;\n}\n";
  const auto prog = compile(src);
  ExploreOptions opts;
  opts.coarsen = true;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_GE(r.stats.get("coarsen_guard_hits"), 1u);
  EXPECT_EQ(r.terminals.size(), 1u);
  EXPECT_EQ(r.terminal_int_values("done"), (std::set<std::int64_t>{1}));
}

TEST(Explore, FingerprintVisitedSetIsSmaller) {
  // The point of the fingerprint table: dedup memory well below the
  // string-keyed baseline on the same exploration.
  const auto prog = compile(workload::fig5_locality());
  ExploreOptions fp_opts;
  const ExploreResult fp = explore(*prog->lowered, fp_opts);
  ExploreOptions exact_opts;
  exact_opts.exact_keys = true;
  const ExploreResult exact = explore(*prog->lowered, exact_opts);
  EXPECT_EQ(fp.terminal_keys(), exact.terminal_keys());
  EXPECT_EQ(fp.stats.gauge("visited_configs"), exact.stats.gauge("visited_configs"));
  ASSERT_GT(exact.stats.gauge("visited_bytes"), 0u);
  // Acceptance bound from the issue: fingerprint mode uses at most 20% of
  // the exact-keys visited-set footprint.
  EXPECT_LE(fp.stats.gauge("visited_bytes") * 5, exact.stats.gauge("visited_bytes"));
}

}  // namespace
}  // namespace copar::explore
