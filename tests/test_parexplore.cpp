// Parallel frontier engine and exploration-bookkeeping regression tests.
//
// The correctness contract of the parallel engine is that it computes the
// same terminal-key set, deadlock verdict, violations, and faults as the
// sequential engine — the matrix test below pins that across reductions,
// coarsening, thread counts, and visited-set representations, using the
// sequential Full/exact-keys run as the oracle.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/explore/explorer.h"
#include "src/explore/parexplore.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"

namespace copar::explore {
namespace {

TEST(ParExplore, MatrixMatchesSequentialOracle) {
  const std::vector<std::pair<std::string, std::string>> samples = {
      {"fig2", workload::fig2_shasha_snir()},
      {"fig5", workload::fig5_locality()},
      {"philosophers3", workload::dining_philosophers(3)},
  };
  for (const auto& [name, src] : samples) {
    SCOPED_TRACE(name);
    const auto prog = compile(src);

    ExploreOptions oracle_opts;
    oracle_opts.exact_keys = true;  // string-keyed baseline
    const ExploreResult oracle = explore(*prog->lowered, oracle_opts);
    ASSERT_FALSE(oracle.terminals.empty());

    for (const Reduction reduction : {Reduction::Full, Reduction::Stubborn}) {
      for (const bool coarsen : {false, true}) {
        for (const bool sleep : {false, true}) {
          for (const unsigned threads : {1u, 4u}) {
            for (const bool exact_keys : {false, true}) {
              SCOPED_TRACE((reduction == Reduction::Stubborn ? "stubborn" : "full") +
                           std::string(coarsen ? " coarsen" : "") +
                           std::string(sleep ? " sleep" : "") + " threads=" +
                           std::to_string(threads) + (exact_keys ? " exact" : " fingerprint"));
              ExploreOptions opts;
              opts.reduction = reduction;
              opts.coarsen = coarsen;
              opts.sleep_sets = sleep;
              opts.threads = threads;
              opts.exact_keys = exact_keys;
              const ExploreResult r = explore(*prog->lowered, opts);
              EXPECT_FALSE(r.truncated);
              EXPECT_EQ(r.terminal_keys(), oracle.terminal_keys());
              EXPECT_EQ(r.deadlock_found, oracle.deadlock_found);
              EXPECT_EQ(r.violations, oracle.violations);
              EXPECT_EQ(r.faults, oracle.faults);
              // No fingerprint collisions on state spaces this small; in
              // fingerprint mode the counter is structurally zero.
              EXPECT_EQ(r.stats.gauge("fingerprint_collisions"), 0u);
            }
          }
        }
      }
    }
  }
}

TEST(ParExplore, ConfigCountsMatchSequentialWithoutReduction) {
  // Under Full expansion the set of reachable configurations is
  // scheduling-independent, so the parallel engine must count exactly as
  // many distinct configurations as the sequential one.
  const auto prog = compile(workload::fig2_shasha_snir());
  ExploreOptions seq;
  const ExploreResult a = explore(*prog->lowered, seq);
  ExploreOptions par;
  par.threads = 4;
  const ExploreResult b = explore(*prog->lowered, par);
  EXPECT_EQ(b.num_configs, a.num_configs);
  EXPECT_EQ(b.num_transitions, a.num_transitions);
  EXPECT_EQ(b.stats.gauge("visited_configs"), a.stats.gauge("visited_configs"));
  EXPECT_EQ(b.stats.gauge("threads"), 4u);
}

TEST(ParExplore, TruncationTerminatesAndIsReported) {
  // A cap far below the state-space size must not hang the worker pool
  // (regression: the frontier drains instead of blocking forever).
  const auto prog = compile(workload::dining_philosophers(3));
  ExploreOptions opts;
  opts.threads = 4;
  opts.max_configs = 10;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.num_configs, 10u);
  EXPECT_GE(r.stats.get("truncated_transitions"), 1u);
}

TEST(ParExplore, OnlySleepWithGraphRequiresSequentialEngine) {
  // Everything else — graph, accesses, pairs, lifetimes, sleep — now runs
  // under threads > 1; the one exclusion is sleep + record_graph, and it is
  // a structured diagnostic, not a bare abort.
  const auto prog = compile(workload::fig2_shasha_snir());
  ExploreOptions opts;
  opts.threads = 2;
  opts.record_graph = true;
  EXPECT_NO_THROW(explore(*prog->lowered, opts));
  opts.record_graph = false;
  opts.sleep_sets = true;
  EXPECT_NO_THROW(explore(*prog->lowered, opts));

  opts.record_graph = true;
  const auto diag = parallel_unsupported(opts);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->code, "par-unsupported");
  EXPECT_THROW(explore(*prog->lowered, opts), Error);

  opts.threads = 1;
  EXPECT_FALSE(parallel_unsupported(opts).has_value());
}

TEST(ParExplore, RecordedPayloadsMatchSequentialUnderFull) {
  // Under Full reduction every (state, pid) transition fires exactly once
  // in either engine, so the merged per-worker recorders must reproduce the
  // sequential access log and pair facts exactly.
  for (const auto& src : {workload::fig2_shasha_snir(), workload::fig5_locality()}) {
    const auto prog = compile(src);
    ExploreOptions opts;
    opts.record_accesses = true;
    opts.record_pairs = true;
    opts.record_lifetimes = true;
    const ExploreResult seq = explore(*prog->lowered, opts);
    opts.threads = 4;
    const ExploreResult par = explore(*prog->lowered, opts);
    EXPECT_EQ(par.accesses, seq.accesses);
    EXPECT_EQ(par.pairs, seq.pairs);
    EXPECT_EQ(par.terminal_keys(), seq.terminal_keys());
  }
}

TEST(ParExplore, RecordedGraphIsSchedulingIndependentUnderFull) {
  // Node ids are assigned by fingerprint order after the join, so two
  // parallel runs must produce byte-identical graphs, and the graph must
  // structurally match the sequential one (same node/edge/terminal counts;
  // ids differ — the sequential engine numbers in DFS insertion order).
  const auto prog = compile(workload::dining_philosophers(3));
  ExploreOptions opts;
  opts.record_graph = true;
  const ExploreResult seq = explore(*prog->lowered, opts);
  opts.threads = 4;
  const ExploreResult a = explore(*prog->lowered, opts);
  const ExploreResult b = explore(*prog->lowered, opts);
  EXPECT_EQ(a.graph.edges, b.graph.edges);
  EXPECT_EQ(a.graph.terminal_nodes, b.graph.terminal_nodes);
  EXPECT_EQ(a.graph.deadlock_nodes, b.graph.deadlock_nodes);
  EXPECT_EQ(a.graph.num_nodes, seq.graph.num_nodes);
  EXPECT_EQ(a.graph.edges.size(), seq.graph.edges.size());
  EXPECT_EQ(a.graph.edges.size(), a.num_transitions);
  EXPECT_EQ(a.graph.terminal_nodes.size(), seq.graph.terminal_nodes.size());
  EXPECT_EQ(a.graph.deadlock_nodes.size(), seq.graph.deadlock_nodes.size());
  // Every edge endpoint is a valid node id.
  for (const StateGraph::Edge& e : a.graph.edges) {
    EXPECT_LT(e.from, a.graph.num_nodes);
    EXPECT_LT(e.to, a.graph.num_nodes);
  }
}

TEST(ParExplore, InsertionProvisoMatchesStackProvisoOnCyclicSample) {
  // Peterson's algorithm has a cyclic state space (spin loops), the case
  // the ignoring-problem provisos exist for. The DFS stack proviso
  // (sequential), the insertion proviso (parallel), and the Full oracle
  // must agree on the terminal-key set.
  const auto prog = compile(workload::peterson_mutex());
  ExploreOptions full;
  const ExploreResult oracle = explore(*prog->lowered, full);
  ExploreOptions seq;
  seq.reduction = Reduction::Stubborn;
  const ExploreResult stack = explore(*prog->lowered, seq);
  ExploreOptions par = seq;
  par.threads = 4;
  const ExploreResult insertion = explore(*prog->lowered, par);
  EXPECT_EQ(stack.terminal_keys(), oracle.terminal_keys());
  EXPECT_EQ(insertion.terminal_keys(), oracle.terminal_keys());
  EXPECT_EQ(insertion.deadlock_found, oracle.deadlock_found);
}

TEST(ParExplore, TruncationKeepsTransitionEdgeInvariantParallel) {
  // The sequential invariant graph.edges.size() == num_transitions must
  // survive truncation in the parallel engine too (dropped successors
  // uncount their transition and skip their edge).
  const auto prog = compile(workload::dining_philosophers(3));
  ExploreOptions opts;
  opts.threads = 4;
  opts.record_graph = true;
  opts.max_configs = 10;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.num_configs, 10u);
  EXPECT_EQ(r.graph.edges.size(), r.num_transitions);
  EXPECT_GE(r.stats.get("truncated_transitions"), 1u);
}

TEST(ParExplore, StealCountersAlwaysPresent) {
  const auto prog = compile(workload::fig2_shasha_snir());
  ExploreOptions opts;
  opts.threads = 4;
  const ExploreResult r = explore(*prog->lowered, opts);
  // Present even at zero — the engine's health signals.
  EXPECT_TRUE(r.stats.all().contains("steals"));
  EXPECT_TRUE(r.stats.all().contains("stolen_items"));
  EXPECT_TRUE(r.stats.all().contains("steal_misses"));
  EXPECT_TRUE(r.stats.all().contains("frontier_contention"));
}

// --- sequential bookkeeping regressions (the bugfixes in this PR) ---------

TEST(Explore, TruncationKeepsTransitionEdgeInvariant) {
  // Regression: hitting max_configs used to leave the dropped successor's
  // transition counted, breaking graph.edges.size() == num_transitions.
  const auto prog = compile(R"(
    var x; var y;
    fun main() { cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend; }
  )");
  ExploreOptions opts;
  opts.record_graph = true;
  opts.max_configs = 3;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.num_configs, 3u);
  EXPECT_EQ(r.graph.edges.size(), r.num_transitions);
  EXPECT_EQ(r.stats.get("truncated_transitions"), 1u);
  // The dropped successor is also withdrawn from the visited set.
  EXPECT_EQ(r.stats.gauge("visited_configs"), r.num_configs);
}

TEST(Explore, CoarsenGuardCapIsCountedNotSilent) {
  // A straight-line run of > kCoarsenGuardMax non-critical actions forces
  // the coarsening guard to trip; the hit must surface as a counter
  // (regression: the cap used to be silent).
  std::string src = "var done;\nfun main() {\n  var t;\n  t = 0;\n";
  for (int i = 0; i < kCoarsenGuardMax + 50; ++i) src += "  t = t + 1;\n";
  src += "  done = 1;\n}\n";
  const auto prog = compile(src);
  ExploreOptions opts;
  opts.coarsen = true;
  const ExploreResult r = explore(*prog->lowered, opts);
  EXPECT_GE(r.stats.get("coarsen_guard_hits"), 1u);
  EXPECT_EQ(r.terminals.size(), 1u);
  EXPECT_EQ(r.terminal_int_values("done"), (std::set<std::int64_t>{1}));
}

TEST(ParExplore, SleepPidCapIsCountedNotSilent) {
  // Pids are assigned monotonically and never reused, so 32 sequential
  // cobegins burn pids 1..64 and the final pair lands past the 64-bit
  // sleep-set mask (regression: the cap used to degrade silently).
  std::string src = "var a; var b;\nfun main() {\n";
  for (int i = 0; i < 32; ++i) src += "  cobegin { skip; } || { skip; } coend;\n";
  src += "  cobegin { a = 1; } || { b = 1; } coend;\n}\n";
  const auto prog = compile(src);

  ExploreOptions off;
  off.threads = 2;
  const ExploreResult base = explore(*prog->lowered, off);
  ExploreOptions on = off;
  on.sleep_sets = true;
  const ExploreResult slept = explore(*prog->lowered, on);

  ASSERT_FALSE(base.truncated);
  ASSERT_FALSE(slept.truncated);
  // The capped pids must surface as a counter, not vanish.
  EXPECT_GT(slept.stats.get("sleep.pids_capped"), 0u);
  // Soundness pin: sleep sets prune transitions, never states or verdicts,
  // so every stat a truncation or lost state would move matches --sleep off.
  EXPECT_EQ(slept.num_configs, base.num_configs);
  EXPECT_EQ(slept.terminal_keys(), base.terminal_keys());
  EXPECT_EQ(slept.deadlock_found, base.deadlock_found);
  EXPECT_EQ(slept.violations, base.violations);
  EXPECT_EQ(slept.faults, base.faults);
}

TEST(Explore, FingerprintVisitedSetIsSmaller) {
  // The point of the fingerprint table: dedup memory well below the
  // string-keyed baseline on the same exploration.
  const auto prog = compile(workload::fig5_locality());
  ExploreOptions fp_opts;
  const ExploreResult fp = explore(*prog->lowered, fp_opts);
  ExploreOptions exact_opts;
  exact_opts.exact_keys = true;
  const ExploreResult exact = explore(*prog->lowered, exact_opts);
  EXPECT_EQ(fp.terminal_keys(), exact.terminal_keys());
  EXPECT_EQ(fp.stats.gauge("visited_configs"), exact.stats.gauge("visited_configs"));
  ASSERT_GT(exact.stats.gauge("visited_bytes"), 0u);
  // Acceptance bound from the issue: fingerprint mode uses at most 20% of
  // the exact-keys visited-set footprint.
  EXPECT_LE(fp.stats.gauge("visited_bytes") * 5, exact.stats.gauge("visited_bytes"));
}

}  // namespace
}  // namespace copar::explore
