// Exploration-engine tests, including the paper's Example 1 / Figure 2
// (the Shasha–Snir program: which outcome vectors are legal under
// sequential consistency).
#include <gtest/gtest.h>

#include "src/explore/explorer.h"
#include "src/sem/program.h"

namespace copar::explore {
namespace {

ExploreResult run(std::string_view src, ExploreOptions opts, const CompiledProgram*& keep) {
  static std::vector<std::unique_ptr<CompiledProgram>> alive;
  alive.push_back(compile(src));
  keep = alive.back().get();
  return explore(*alive.back()->lowered, opts);
}

TEST(Explore, SequentialProgramHasLinearSpace) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run("var x; fun main() { x = 1; x = 2; x = 3; }", {}, p);
  EXPECT_EQ(r.num_configs, 5u);  // init + 3 assigns + return-from-main
  EXPECT_EQ(r.terminals.size(), 1u);
  EXPECT_FALSE(r.deadlock_found);
}

TEST(Explore, TwoIndependentThreads) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var x; var y;
    fun main() { cobegin { x = 1; } || { y = 2; } coend; }
  )", {}, p);
  // One terminal outcome; diamond-shaped interior.
  EXPECT_EQ(r.terminals.size(), 1u);
  const auto& terminal = r.terminals.begin()->second.config;
  EXPECT_EQ(terminal.global_value("x")->as_int(), 1);
  EXPECT_EQ(terminal.global_value("y")->as_int(), 2);
}

TEST(Explore, RacingWritesYieldBothOutcomes) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; }
  )", {}, p);
  EXPECT_EQ(r.terminal_int_values("x"), (std::set<std::int64_t>{1, 2}));
}

// Example 1 / Figure 2: the Shasha–Snir program. Under sequential
// consistency, after `cobegin {x=1; a=y;} || {y=1; b=x;} coend`, the
// outcome (a,b) = (0,0) is impossible; the other three combinations are all
// reachable. A compiler analysis must reproduce exactly this set.
TEST(Explore, Fig2ShashaSnirOutcomes) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var x; var y; var a; var b;
    fun main() {
      cobegin
        { s1: x = 1; s2: a = y; }
      ||
        { s3: y = 1; s4: b = x; }
      coend;
    }
  )", {}, p);
  std::set<std::pair<std::int64_t, std::int64_t>> outcomes;
  for (const auto& [key, t] : r.terminals) {
    outcomes.emplace(t.config.global_value("a")->as_int(),
                     t.config.global_value("b")->as_int());
  }
  const std::set<std::pair<std::int64_t, std::int64_t>> expected = {{0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(outcomes, expected);  // (0,0) must NOT be reachable
}

TEST(Explore, DeadlockIsATerminal) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var m1; var m2;
    fun main() {
      cobegin
        { lock(m1); lock(m2); unlock(m2); unlock(m1); }
      ||
        { lock(m2); lock(m1); unlock(m1); unlock(m2); }
      coend;
    }
  )", {}, p);
  EXPECT_TRUE(r.deadlock_found);
  bool saw_deadlock = false;
  bool saw_completion = false;
  for (const auto& [key, t] : r.terminals) {
    saw_deadlock = saw_deadlock || t.deadlock;
    saw_completion = saw_completion || !t.deadlock;
  }
  EXPECT_TRUE(saw_deadlock);
  EXPECT_TRUE(saw_completion);
}

TEST(Explore, LocksPreventTheRace) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var m; var x;
    fun main() {
      var t1; var t2;
      cobegin
        { lock(m); t1 = x; x = t1 + 1; unlock(m); }
      ||
        { lock(m); t2 = x; x = t2 + 1; unlock(m); }
      coend;
    }
  )", {}, p);
  // With mutual exclusion the lost-update outcome x==1 is impossible.
  EXPECT_EQ(r.terminal_int_values("x"), (std::set<std::int64_t>{2}));
  EXPECT_FALSE(r.deadlock_found);
}

TEST(Explore, WithoutLocksLostUpdateHappens) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var x;
    fun main() {
      var t1; var t2;
      cobegin
        { t1 = x; x = t1 + 1; }
      ||
        { t2 = x; x = t2 + 1; }
      coend;
    }
  )", {}, p);
  EXPECT_EQ(r.terminal_int_values("x"), (std::set<std::int64_t>{1, 2}));
}

TEST(Explore, AssertViolationsAggregated) {
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var x;
    fun main() {
      cobegin { x = 1; } || { sA: assert(x == 1); } coend;
    }
  )", {}, p);
  // The assertion races with the write: it fails on some path.
  EXPECT_EQ(r.violations.size(), 1u);
}

TEST(Explore, BusyWaitLoopConverges) {
  // The state space is finite (spin re-visits the same configuration), so
  // exploration terminates; the spin exits once the flag is set.
  const CompiledProgram* p = nullptr;
  const ExploreResult r = run(R"(
    var flag; var r;
    fun main() {
      cobegin
        { while (flag == 0) { skip; } r = 1; }
      ||
        { flag = 1; }
      coend;
    }
  )", {}, p);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.terminal_int_values("r"), (std::set<std::int64_t>{1}));
}

TEST(Explore, MaxConfigsTruncates) {
  const CompiledProgram* p = nullptr;
  ExploreOptions opts;
  opts.max_configs = 3;
  const ExploreResult r = run(R"(
    var x; var y;
    fun main() { cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend; }
  )", opts, p);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.num_configs, 3u);
}

TEST(Explore, GraphRecordsEdges) {
  const CompiledProgram* p = nullptr;
  ExploreOptions opts;
  opts.record_graph = true;
  const ExploreResult r = run(R"(
    var x; var y;
    fun main() { cobegin { x = 1; } || { y = 2; } coend; }
  )", opts, p);
  EXPECT_EQ(r.graph.num_nodes, r.num_configs);
  EXPECT_EQ(r.graph.edges.size(), r.num_transitions);
  for (const auto& e : r.graph.edges) {
    EXPECT_LT(e.from, r.num_configs);
    EXPECT_LT(e.to, r.num_configs);
  }
}

TEST(Explore, DotExportWellFormed) {
  const CompiledProgram* p = nullptr;
  ExploreOptions opts;
  opts.record_graph = true;
  const ExploreResult r = run(R"(
    var m1; var m2;
    fun main() {
      cobegin
        { lock(m1); sX: lock(m2); unlock(m2); unlock(m1); }
      ||
        { lock(m2); lock(m1); unlock(m1); unlock(m2); }
      coend;
    }
  )", opts, p);
  const std::string dot = to_dot(r.graph, *p->lowered);
  EXPECT_NE(dot.find("digraph configurations"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);      // terminals
  EXPECT_NE(dot.find("fillcolor=\"#cc3333\""), std::string::npos);  // deadlock
  EXPECT_NE(dot.find("sX"), std::string::npos);                // edge label
  // As many terminal node markers as terminal configurations.
  EXPECT_EQ(r.graph.terminal_nodes.size(), r.terminals.size());
  EXPECT_FALSE(r.graph.deadlock_nodes.empty());
}

TEST(Explore, PairFactsDetectConflicts) {
  const CompiledProgram* p = nullptr;
  ExploreOptions opts;
  opts.record_pairs = true;
  const ExploreResult r = run(R"(
    var x; var y;
    fun main() {
      cobegin { sW: x = 1; } || { sR: y = x; } coend;
    }
  )", opts, p);
  const lang::Stmt* sw = p->module->find_labeled("sW");
  const lang::Stmt* sr = p->module->find_labeled("sR");
  ASSERT_NE(sw, nullptr);
  ASSERT_NE(sr, nullptr);
  const std::uint32_t lo = std::min(sw->id(), sr->id());
  const std::uint32_t hi = std::max(sw->id(), sr->id());
  auto it = r.pairs.find({lo, hi});
  ASSERT_NE(it, r.pairs.end());
  EXPECT_TRUE(it->second.co_enabled);
  // One writes x, the other reads it.
  EXPECT_TRUE(it->second.w1_r2 || it->second.r1_w2);
  EXPECT_FALSE(it->second.w1_w2);
}

TEST(Explore, AccessLogAttributesStmtAndProc) {
  const CompiledProgram* p = nullptr;
  ExploreOptions opts;
  opts.record_accesses = true;
  const ExploreResult r = run(R"(
    var g;
    fun writer() { sW: g = 1; }
    fun main() { writer(); }
  )", opts, p);
  const lang::Stmt* sw = p->module->find_labeled("sW");
  ASSERT_NE(sw, nullptr);
  auto it = r.accesses.by_stmt.find(sw->id());
  ASSERT_NE(it, r.accesses.by_stmt.end());
  EXPECT_EQ(it->second.writes.size(), 1u);
  EXPECT_EQ(it->second.writes.begin()->kind, sem::ObjKind::Globals);
  // Side effect visible on writer and transitively on main.
  const std::uint32_t writer_proc = p->module->find_function("writer")->index();
  const std::uint32_t main_proc = p->lowered->entry_proc();
  EXPECT_TRUE(r.accesses.by_proc.contains(writer_proc));
  EXPECT_TRUE(r.accesses.by_proc.contains(main_proc));
  EXPECT_FALSE(r.accesses.by_proc.at(main_proc).writes.empty());
}

TEST(Explore, SiteInfoTracksThreads) {
  const CompiledProgram* p = nullptr;
  ExploreOptions opts;
  opts.record_accesses = true;
  const ExploreResult r = run(R"(
    var p1;
    fun main() {
      cobegin { sAlloc: p1 = alloc(1); *p1 = 5; } || { skip; } coend;
    }
  )", opts, p);
  const lang::Stmt* sa = p->module->find_labeled("sAlloc");
  ASSERT_NE(sa, nullptr);
  auto it = r.accesses.sites.find(sa->id());
  ASSERT_NE(it, r.accesses.sites.end());
  // `allocated` counts explored firings of the alloc action (the action is
  // reached from several interleavings), so it is at least one.
  EXPECT_GE(it->second.allocated, 1u);
  EXPECT_EQ(it->second.creator_threads.size(), 1u);
}

}  // namespace
}  // namespace copar::explore
