// Tests for the doall construct: dynamic fan-out with per-instance index
// frames, across every layer — parser, concrete semantics, reductions,
// abstract folding (where doall is exactly the clan use case).
#include <gtest/gtest.h>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/sem/program.h"
#include "tests/testutil.h"

namespace copar {
namespace {

using testutil::global_int;
using testutil::run_deterministic;

TEST(DoAll, ParsesAndPrints) {
  auto m = lang::parse_program(R"(
    var s;
    fun main() { doall (i = 0 .. 3) { s = s + i; } }
  )");
  const std::string printed = lang::print(*m);
  EXPECT_NE(printed.find("doall (i = 0 .. 3)"), std::string::npos);
  // Round trip.
  auto m2 = lang::parse_program(printed);
  EXPECT_EQ(lang::print(*m2), printed);
}

TEST(DoAll, ReturnInsideBodyRejected) {
  DiagnosticEngine diags;
  (void)lang::parse_program("fun main() { doall (i = 0 .. 1) { return; } }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(DoAll, IndexVisibleOnlyInBody) {
  DiagnosticEngine diags;
  (void)lang::parse_program(R"(
    var s;
    fun main() { doall (i = 0 .. 1) { skip; } s = i; }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(DoAll, EachInstanceGetsItsIndex) {
  auto p = compile(R"(
    var a;
    fun main() {
      a = alloc(4);
      doall (i = 0 .. 3) { a[i] = i * 10; }
      sQ: skip;
    }
  )");
  const sem::Configuration cfg = run_deterministic(*p->lowered);
  ASSERT_TRUE(cfg.all_done());
  // Read the array out of the terminal store.
  const auto pa = cfg.global_value("a");
  ASSERT_TRUE(pa.has_value() && pa->is_ptr());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cfg.store.read(pa->ptr_obj(), i), sem::Value::integer(10 * i));
  }
}

TEST(DoAll, EmptyRangeForksNothing) {
  auto p = compile(R"(
    var r;
    fun main() { doall (i = 5 .. 2) { r = 99; } r = r + 1; }
  )");
  const sem::Configuration cfg = run_deterministic(*p->lowered);
  EXPECT_EQ(global_int(cfg, "r"), 1);
}

TEST(DoAll, DynamicBoundsFromVariables) {
  auto p = compile(R"(
    var n = 3; var s;
    fun main() {
      doall (i = 1 .. n) { s = s + i; }
    }
  )");
  explore::ExploreOptions opts;
  const auto r = explore::explore(*p->lowered, opts);
  // All interleavings of s = s + i race; under some schedule updates are
  // lost, so several terminal values exist — but 6 (all applied) is there.
  auto values = r.terminal_int_values("s");
  EXPECT_TRUE(values.contains(6));
}

TEST(DoAll, RacesAreExploredAcrossInstances) {
  auto p = compile(R"(
    var x;
    fun main() { doall (i = 1 .. 2) { x = i; } }
  )");
  const auto r = explore::explore(*p->lowered, {});
  EXPECT_EQ(r.terminal_int_values("x"), (std::set<std::int64_t>{1, 2}));
}

TEST(DoAll, IndependentInstancesViaIndexing) {
  auto p = compile(R"(
    var a; var ok;
    fun main() {
      a = alloc(3);
      doall (i = 0 .. 2) { a[i] = i + 1; }
      ok = a[0] + a[1] + a[2];
    }
  )");
  const auto r = explore::explore(*p->lowered, {});
  EXPECT_EQ(r.terminal_int_values("ok"), (std::set<std::int64_t>{6}));
}

TEST(DoAll, StubbornAndCoarsenPreserveResults) {
  for (const char* src : {
           R"(var x; fun main() { doall (i = 1 .. 3) { x = x + i; } })",
           R"(var a; fun main() { a = alloc(3); doall (i = 0 .. 2) { a[i] = i; } })",
           R"(var m; var x;
              fun main() { doall (i = 1 .. 2) { lock(m); x = x + i; unlock(m); } })",
       }) {
    auto p = compile(src);
    const auto full = explore::explore(*p->lowered, {});
    explore::ExploreOptions stub;
    stub.reduction = explore::Reduction::Stubborn;
    stub.coarsen = true;
    const auto reduced = explore::explore(*p->lowered, stub);
    EXPECT_EQ(full.terminal_keys(), reduced.terminal_keys()) << src;
    EXPECT_EQ(full.deadlock_found, reduced.deadlock_found) << src;
  }
}

TEST(DoAll, NestedInsideCobegin) {
  auto p = compile(R"(
    var s; var y;
    fun main() {
      cobegin
        { doall (i = 1 .. 2) { s = s + i; } }
      ||
        { y = 1; }
      coend;
    }
  )");
  const auto r = explore::explore(*p->lowered, {});
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_TRUE(r.terminal_int_values("s").contains(3));
  EXPECT_EQ(r.terminal_int_values("y"), (std::set<std::int64_t>{1}));
}

TEST(DoAll, BodySeesEnclosingLocalsThroughStaticLink) {
  auto p = compile(R"(
    var r;
    fun main() {
      var base = 100;
      doall (i = 1 .. 1) { r = base + i; }
    }
  )");
  const sem::Configuration cfg = run_deterministic(*p->lowered);
  EXPECT_EQ(global_int(cfg, "r"), 101);
}

TEST(DoAll, AbstractTerminatesWithUnknownBounds) {
  // n is top abstractly: the clan (ω) point folds any number of instances.
  auto p = compile(R"(
    var n; var s;
    fun main() {
      n = 5;
      doall (i = 1 .. n) { s = s + i; }
      sEnd: skip;
    }
  )");
  for (const auto folding : {absem::Folding::Tree, absem::Folding::Clan}) {
    absem::AbsOptions opts;
    opts.folding = folding;
    absem::AbsExplorer<absdom::FlatInt> engine(*p->lowered, opts);
    const auto r = engine.run();
    EXPECT_FALSE(r.truncated);
    EXPECT_GT(r.num_states, 0u);
  }
}

TEST(DoAll, AbstractMhpSeesSelfParallelism) {
  auto p = compile(R"(
    var x;
    fun main() { doall (i = 1 .. 2) { sW: x = i; } }
  )");
  absem::AbsExplorer<absdom::FlatInt> engine(*p->lowered, {});
  const auto abs = engine.run();
  const lang::Stmt* sw = p->module->find_labeled("sW");
  ASSERT_NE(sw, nullptr);
  // The ω point makes the body statement parallel with itself — McDowell's
  // "not necessary to know exactly how many tasks".
  EXPECT_TRUE(abs.mhp.contains({sw->id(), sw->id()}));
}

TEST(DoAll, AbstractMhpOverapproximatesConcrete) {
  auto p = compile(R"(
    var x; var y;
    fun main() {
      doall (i = 1 .. 2) { sA: x = x + i; }
      sB: y = x;
    }
  )");
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  const auto concrete = explore::explore(*p->lowered, opts);
  absem::AbsExplorer<absdom::FlatInt> engine(*p->lowered, {});
  const auto abs = engine.run();
  for (const auto& [pair, facts] : concrete.pairs) {
    if (facts.co_enabled) {
      EXPECT_TRUE(abs.mhp.contains(pair))
          << "lost (" << pair.first << "," << pair.second << ")";
    }
  }
  // sB follows the join: never parallel with the body.
  const auto sa = p->module->find_labeled("sA")->id();
  const auto sb = p->module->find_labeled("sB")->id();
  EXPECT_FALSE(abs.mhp.contains({std::min(sa, sb), std::max(sa, sb)}));
}

TEST(DoAll, CanonicalKeysMergeSymmetricInstances) {
  // Two instances doing symmetric independent work: interleavings converge.
  auto p = compile(R"(
    var a;
    fun main() {
      a = alloc(2);
      doall (i = 0 .. 1) { a[i] = 7; }
    }
  )");
  const auto full = explore::explore(*p->lowered, {});
  EXPECT_EQ(full.terminals.size(), 1u);
}

}  // namespace
}  // namespace copar
