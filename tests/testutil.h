// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <string_view>

#include "src/sem/config.h"
#include "src/sem/program.h"
#include "src/sem/step.h"

namespace copar::testutil {

/// Runs a configuration to completion by always firing the lowest enabled
/// pid (a deterministic schedule). Fails the test on non-termination.
inline sem::Configuration run_deterministic(const sem::LoweredProgram& program,
                                            int max_steps = 100000) {
  sem::Configuration cfg = sem::Configuration::initial(program);
  for (int i = 0; i < max_steps; ++i) {
    bool fired = false;
    for (sem::Pid pid = 0; pid < cfg.processes.size() && !fired; ++pid) {
      if (!cfg.processes[pid].live()) continue;
      const sem::ActionInfo info = sem::action_info(cfg, pid);
      if (info.exists && info.enabled) {
        cfg = sem::apply_action(cfg, info);
        fired = true;
      }
    }
    if (!fired) return cfg;  // terminal (done or deadlock)
  }
  ADD_FAILURE() << "run_deterministic: did not terminate";
  return cfg;
}

/// Compile + run under the deterministic schedule.
inline sem::Configuration run_source(std::string_view source, const CompiledProgram*& out_prog,
                                     int max_steps = 100000) {
  static std::vector<std::unique_ptr<CompiledProgram>> keep_alive;
  keep_alive.push_back(compile(source));
  out_prog = keep_alive.back().get();
  return run_deterministic(*keep_alive.back()->lowered, max_steps);
}

/// Value of global `name` as int; fails the test if absent or non-int.
inline std::int64_t global_int(const sem::Configuration& cfg, std::string_view name) {
  auto v = cfg.global_value(name);
  EXPECT_TRUE(v.has_value()) << "no global named " << name;
  if (!v.has_value()) return INT64_MIN;
  EXPECT_TRUE(v->is_int()) << name << " holds " << v->to_string();
  return v->is_int() ? v->as_int() : INT64_MIN;
}

}  // namespace copar::testutil
