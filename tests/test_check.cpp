// The static checker battery (src/check) and the diagnostics subsystem it
// reports through: codes, spans, suppression comments, per-code disabling,
// and the three renderers (text / JSON / SARIF).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "src/check/check.h"
#include "src/sem/program.h"
#include "src/support/diagnostics.h"

namespace copar {
namespace {

struct CheckRun {
  std::unique_ptr<CompiledProgram> prog;
  DiagnosticEngine engine;
  check::CheckSummary summary;
};

CheckRun run(std::string_view source, const check::CheckOptions& opts = {},
             const std::vector<std::string>& disabled = {}) {
  CheckRun out;
  for (const std::string& code : disabled) out.engine.disable_code(code);
  out.engine.load_suppressions(source);
  out.prog = compile(source);
  out.summary = check::run_checks(*out.prog, out.engine, opts);
  return out;
}

std::vector<std::string> codes(const DiagnosticEngine& engine) {
  std::vector<std::string> out;
  for (const Diagnostic& d : engine.all()) out.push_back(d.code);
  return out;
}

bool has_code(const DiagnosticEngine& engine, std::string_view code) {
  const auto cs = codes(engine);
  return std::find(cs.begin(), cs.end(), code) != cs.end();
}

const Diagnostic* find_code(const DiagnosticEngine& engine, std::string_view code) {
  for (const Diagnostic& d : engine.all()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// --- the catalog ----------------------------------------------------------

TEST(CheckCatalog, SortedUniqueAndLookupWorks) {
  const auto cat = check::catalog();
  ASSERT_FALSE(cat.empty());
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_LT(cat[i - 1].id, cat[i].id) << "catalog must stay sorted for find_rule";
  }
  for (const RuleInfo& r : cat) {
    const RuleInfo* found = check::find_rule(r.id);
    ASSERT_NE(found, nullptr) << r.id;
    EXPECT_EQ(found->id, r.id);
    EXPECT_FALSE(r.summary.empty());
    EXPECT_FALSE(r.help.empty());
  }
  EXPECT_EQ(check::find_rule("no-such-check"), nullptr);
}

TEST(CheckCatalog, EveryFaultKindHasACatalogEntry) {
  for (const sem::Fault f :
       {sem::Fault::DerefNull, sem::Fault::DerefNonPointer, sem::Fault::OutOfBounds,
        sem::Fault::TypeError, sem::Fault::DivByZero, sem::Fault::NotAFunction,
        sem::Fault::ArityMismatch, sem::Fault::UnlockNotHeld, sem::Fault::NegativeAlloc}) {
    EXPECT_NE(check::find_rule(check::fault_code(f)), nullptr)
        << static_cast<int>(f) << " -> " << check::fault_code(f);
  }
}

// --- clean program: zero findings -----------------------------------------

TEST(Check, CleanProgramHasNoFindings) {
  const auto r = run(R"(
    var count = 0;
    var m = 0;
    fun main() {
      cobegin
        { lock(m); count = count + 1; unlock(m); }
      ||
        { lock(m); count = count + 1; unlock(m); }
      coend;
      assert(count == 2);
    }
  )");
  EXPECT_TRUE(r.summary.concrete_exhaustive);
  EXPECT_TRUE(r.engine.all().empty()) << "unexpected: " << r.engine.to_string();
  EXPECT_FALSE(r.engine.has_errors());
}

// --- races ----------------------------------------------------------------

TEST(Check, RacyCounterReportsRaceWithSpansAndWitness) {
  const auto r = run(R"(var count;
fun main() {
  cobegin
    { count = count + 1; }
  ||
    { count = count + 1; }
  coend;
})");
  const Diagnostic* race = find_code(r.engine, "race");
  ASSERT_NE(race, nullptr) << r.engine.to_string();
  EXPECT_EQ(race->severity, Severity::Error);
  EXPECT_TRUE(r.engine.has_errors());
  // Both halves carry real source spans (line 4 and line 6).
  EXPECT_TRUE(race->span.valid());
  ASSERT_FALSE(race->related_spans.empty());
  EXPECT_TRUE(race->related_spans[0].valid());
  EXPECT_NE(race->span.begin.line, race->related_spans[0].begin.line);
  // And a witness interleaving rides along as notes.
  ASSERT_FALSE(race->notes.empty());
  EXPECT_NE(race->notes[0].message.find("witness"), std::string::npos);
  EXPECT_GT(race->notes.size(), 1u);
}

TEST(Check, LockContentionIsNotARace) {
  // Both threads lock the same cell: the lock/unlock pair conflicts on the
  // lock cell, but that is synchronization, not a data race.
  const auto r = run(R"(
    var m; var a; var b;
    fun main() {
      cobegin
        { lock(m); a = 1; unlock(m); }
      ||
        { lock(m); b = 1; unlock(m); }
      coend;
    }
  )");
  EXPECT_FALSE(has_code(r.engine, "race")) << r.engine.to_string();
}

TEST(Check, NoWitnessOptionSkipsWitnessSearch) {
  check::CheckOptions opts;
  opts.witnesses = false;
  const auto r = run(R"(
    var x;
    fun main() {
      cobegin { x = 1; } || { x = 2; } coend;
    }
  )",
                     opts);
  const Diagnostic* race = find_code(r.engine, "race");
  ASSERT_NE(race, nullptr);
  EXPECT_TRUE(race->notes.empty());
}

// --- assertions and deadlock ----------------------------------------------

TEST(Check, FailingAssertIsAnError) {
  const auto r = run(R"(
    var x;
    fun main() {
      cobegin { x = 1; } || { x = 2; } coend;
      assert(x == 1);
    }
  )");
  const Diagnostic* d = find_code(r.engine, "assert-fail");
  ASSERT_NE(d, nullptr) << r.engine.to_string();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.valid());
}

TEST(Check, DeadlockIsReportedWithWitness) {
  const auto r = run(R"(
    var m1; var m2;
    fun main() {
      cobegin
        { lock(m1); lock(m2); unlock(m2); unlock(m1); }
      ||
        { lock(m2); lock(m1); unlock(m1); unlock(m2); }
      coend;
    }
  )");
  const Diagnostic* d = find_code(r.engine, "deadlock");
  ASSERT_NE(d, nullptr) << r.engine.to_string();
  EXPECT_EQ(d->severity, Severity::Error);
  ASSERT_FALSE(d->notes.empty());
}

// --- run-time-error checks ------------------------------------------------

TEST(Check, DivisionByZeroConcrete) {
  const auto r = run(R"(
    var x; var y;
    fun main() { y = 10 / x; }
  )");
  const Diagnostic* d = find_code(r.engine, "div-zero");
  ASSERT_NE(d, nullptr) << r.engine.to_string();
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(Check, DivisionByNonZeroIntervalIsClean) {
  const auto r = run(R"(
    var x = 4; var y;
    fun main() { y = 10 / x; }
  )");
  EXPECT_FALSE(has_code(r.engine, "div-zero")) << r.engine.to_string();
}

TEST(Check, NullDereferenceConcrete) {
  const auto r = run(R"(
    var p; var y;
    fun main() { p = null; y = *p; }
  )");
  EXPECT_TRUE(has_code(r.engine, "null-deref")) << r.engine.to_string();
  EXPECT_TRUE(r.engine.has_errors());
}

TEST(Check, OutOfBoundsIndexConcrete) {
  const auto r = run(R"(
    var a; var y;
    fun main() {
      a = alloc(2);
      y = a[5];
    }
  )");
  EXPECT_TRUE(has_code(r.engine, "bounds")) << r.engine.to_string();
}

TEST(Check, InBoundsIndexIsClean) {
  const auto r = run(R"(
    var a; var y;
    fun main() {
      a = alloc(2);
      a[0] = 7;
      y = a[1];
    }
  )");
  EXPECT_FALSE(has_code(r.engine, "bounds")) << r.engine.to_string();
}

// --- flow checks ----------------------------------------------------------

TEST(Check, UninitializedReadIsAWarning) {
  const auto r = run(R"(
    var x; var y;
    fun main() { y = x + 1; }
  )");
  const Diagnostic* d = find_code(r.engine, "uninit-read");
  ASSERT_NE(d, nullptr) << r.engine.to_string();
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_FALSE(r.engine.has_errors()) << "warnings must not flip the exit code";
}

TEST(Check, InitializedReadIsClean) {
  const auto r = run(R"(
    var x = 3; var y;
    fun main() { y = x + 1; }
  )");
  EXPECT_FALSE(has_code(r.engine, "uninit-read")) << r.engine.to_string();
}

TEST(Check, UnreachableStatementIsAWarning) {
  const auto r = run(R"(
    var x;
    fun main() {
      if (1 == 2) { x = 99; }
      x = 1;
    }
  )");
  const Diagnostic* d = find_code(r.engine, "unreachable");
  ASSERT_NE(d, nullptr) << r.engine.to_string();
  EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(Check, DeadStoreIsAWarning) {
  // Local t is overwritten before any read; globals are exempt (observable
  // at termination).
  const auto r = run(R"(
    var x;
    fun main() {
      var t;
      t = 1;
      t = 2;
      x = t;
    }
  )");
  EXPECT_TRUE(has_code(r.engine, "dead-store")) << r.engine.to_string();
}

// --- suppression comments and per-code disabling ---------------------------

TEST(CheckSuppression, TrailingCommentSilencesExactlyThatFinding) {
  // Same program twice: the annotated run loses exactly the div-zero
  // finding; everything else (the uninit-read on x) survives.
  const auto noisy = run(R"(var x; var y;
fun main() {
  y = 10 / x;
})");
  EXPECT_TRUE(has_code(noisy.engine, "div-zero"));
  EXPECT_TRUE(has_code(noisy.engine, "uninit-read"));

  const auto annotated = run(R"(var x; var y;
fun main() {
  y = 10 / x; // copar-ignore(div-zero)
})");
  EXPECT_FALSE(has_code(annotated.engine, "div-zero")) << annotated.engine.to_string();
  EXPECT_TRUE(has_code(annotated.engine, "uninit-read"))
      << "suppression must be per-code, not per-line-all";
  EXPECT_EQ(annotated.engine.suppressed_count(), 1u);
  EXPECT_FALSE(annotated.engine.has_errors());
}

TEST(CheckSuppression, OwnLineCommentGuardsTheNextLine) {
  const auto r = run(R"(var x; var y;
fun main() {
  // copar-ignore(div-zero, uninit-read)
  y = 10 / x;
})");
  EXPECT_FALSE(has_code(r.engine, "div-zero")) << r.engine.to_string();
  EXPECT_FALSE(has_code(r.engine, "uninit-read"));
  EXPECT_EQ(r.engine.suppressed_count(), 2u);
}

TEST(CheckSuppression, BareIgnoreSilencesEveryCodeOnTheLine) {
  const auto r = run(R"(var x; var y;
fun main() {
  y = 10 / x; // copar-ignore
})");
  EXPECT_FALSE(has_code(r.engine, "div-zero"));
  EXPECT_FALSE(has_code(r.engine, "uninit-read"));
}

TEST(CheckSuppression, CommentOnOtherLineDoesNotLeak) {
  const auto r = run(R"(var x; var y; var z;
fun main() {
  // copar-ignore(div-zero)
  z = 1;
  y = 10 / x;
})");
  EXPECT_TRUE(has_code(r.engine, "div-zero"))
      << "a guard on line 4 must not reach line 5";
}

TEST(CheckDisable, PerCodeDisableDropsOnlyThatCode) {
  const auto r = run(R"(var x; var y;
fun main() {
  y = 10 / x;
})",
                     {}, {"div-zero"});
  EXPECT_FALSE(has_code(r.engine, "div-zero"));
  EXPECT_TRUE(has_code(r.engine, "uninit-read"));
  EXPECT_EQ(r.engine.disabled_count(), 1u);
}

// --- renderers -------------------------------------------------------------

TEST(CheckRender, TextRendererShowsSpanCaretsAndCode) {
  const std::string source = R"(var count;
fun main() {
  cobegin
    { count = count + 1; }
  ||
    { count = count + 1; }
  coend;
})";
  auto r = run(source);
  std::ostringstream os;
  r.engine.render_text(os, source, "racy.cop");
  const std::string text = os.str();
  EXPECT_NE(text.find("racy.cop:"), std::string::npos);
  EXPECT_NE(text.find("[race]"), std::string::npos);
  EXPECT_NE(text.find('^'), std::string::npos) << "caret underline missing:\n" << text;
}

TEST(CheckRender, JsonAndSarifAgreeOnFindings) {
  auto r = run(R"(var x; var y;
fun main() {
  y = 10 / x;
})");
  ASSERT_FALSE(r.engine.all().empty());

  std::ostringstream js;
  r.engine.render_json(js, "t.cop");
  const std::string json = js.str();
  std::ostringstream ss;
  r.engine.render_sarif(ss, "t.cop", check::catalog());
  const std::string sarif = ss.str();

  // Every finding code appears in both documents.
  for (const Diagnostic& d : r.engine.all()) {
    EXPECT_NE(json.find('"' + d.code + '"'), std::string::npos) << json;
    EXPECT_NE(sarif.find("\"ruleId\": \"" + d.code + '"'), std::string::npos) << sarif;
  }
  // SARIF skeleton: schema, version, tool driver, rule metadata, region.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0"), std::string::npos);
  EXPECT_NE(sarif.find("copar-check"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
}

TEST(CheckRender, SarifBalancedBracesSmoke) {
  // Cheap structural sanity for the hand-rolled writer: every brace and
  // bracket closes (string contents never contain unescaped braces).
  auto r = run(R"(var x;
fun main() {
  cobegin { x = 1; } || { x = 2; } coend;
})");
  std::ostringstream ss;
  r.engine.render_sarif(ss, "t.cop", check::catalog());
  const std::string s = ss.str();
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = in_string;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0) << s;
  EXPECT_FALSE(in_string);
}

// --- spans end-to-end ------------------------------------------------------

TEST(CheckSpans, FindingsPointAtTheOffendingLine) {
  const auto r = run("var x; var y;\nfun main() {\n  y = 10 / x;\n}\n");
  const Diagnostic* d = find_code(r.engine, "div-zero");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin.line, 3u);
  EXPECT_GT(d->span.begin.column, 0u);
  EXPECT_GE(d->span.end, d->span.begin);
}

TEST(CheckSpans, FindingsAreSortedByLocation) {
  const auto r = run(R"(var a; var b; var x; var y;
fun main() {
  y = 10 / a;
  x = 10 / b;
})");
  const auto& all = r.engine.all();
  ASSERT_GE(all.size(), 2u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].span, all[i].span) << "not sorted at " << i;
  }
}

}  // namespace
}  // namespace copar
