// The static race tier (src/analysis/{lockset,staticmhp,racecand}) and its
// integration into the check battery (check --tier=...).
//
// The load-bearing property is the agreement invariant stated in
// racecand.h: the static candidate set over-approximates the explorer's
// races, and lock-suppressed pairs are never concretely racy. The
// TierAgreement tests check it differentially over every shipped sample
// under both Full and Stubborn exploration.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/analysis/lockset.h"
#include "src/analysis/mhp.h"
#include "src/analysis/racecand.h"
#include "src/analysis/staticmhp.h"
#include "src/check/check.h"
#include "src/explore/explorer.h"
#include "src/explore/staticinfo.h"
#include "src/lang/ast.h"
#include "src/sem/program.h"
#include "src/support/diagnostics.h"

namespace copar {
namespace {

/// The whole static tier built over one source program.
struct Tier {
  std::unique_ptr<CompiledProgram> prog;
  std::unique_ptr<explore::StaticInfo> info;
  std::unique_ptr<analysis::StaticParallelism> par;
  std::unique_ptr<analysis::LockSets> locks;
  analysis::CandidateReport cands;
};

Tier build(std::string_view source) {
  Tier t;
  t.prog = compile(source);
  t.info = std::make_unique<explore::StaticInfo>(*t.prog->lowered);
  t.par = std::make_unique<analysis::StaticParallelism>(*t.prog->lowered, *t.info);
  t.locks = std::make_unique<analysis::LockSets>(*t.prog->lowered, *t.info);
  t.cands = analysis::race_candidates(*t.prog->lowered, *t.info, *t.par, *t.locks);
  return t;
}

std::uint32_t stmt(const Tier& t, std::string_view label) {
  const auto id = analysis::labeled_stmt(*t.prog->lowered, label);
  EXPECT_TRUE(id.has_value()) << "no statement labeled " << label;
  return id.value_or(0);
}

/// The candidate (if any) covering the normalized pair (a, b).
const analysis::RaceCandidate* candidate(const Tier& t, std::uint32_t a, std::uint32_t b) {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  for (const analysis::RaceCandidate& c : t.cands.candidates) {
    if (c.stmt1 == lo && c.stmt2 == hi) return &c;
  }
  return nullptr;
}

const analysis::SuppressedPair* suppressed(const Tier& t, std::uint32_t a, std::uint32_t b) {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  for (const analysis::SuppressedPair& s : t.cands.suppressed) {
    if (s.stmt1 == lo && s.stmt2 == hi) return &s;
  }
  return nullptr;
}

void expect_invariant(const Tier& t) {
  EXPECT_EQ(t.cands.pairs_total,
            t.cands.pruned_mhp + t.cands.pruned_lockset + t.cands.candidates.size());
  EXPECT_EQ(t.cands.pruned_lockset, t.cands.suppressed.size());
}

// --- syntactic MHP ---------------------------------------------------------

TEST(StaticMhp, CobeginSiblingsParallelSequencingNot) {
  const Tier t = build(R"(
    var x; var y;
    fun main() {
      sBefore: x = 5;
      cobegin { sA: x = 1; } || { sB: y = 2; } coend;
      sAfter: y = x;
    }
  )");
  const analysis::Mhp mhp = analysis::mhp_from(*t.prog->lowered, *t.info);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sA", "sB"), analysis::MhpAnswer::Yes);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sBefore", "sA"), analysis::MhpAnswer::No);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sAfter", "sA"), analysis::MhpAnswer::No);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sTypo", "sA"), analysis::MhpAnswer::UnknownLabel);
  // A statement is not parallel with itself in a plain cobegin branch.
  EXPECT_FALSE(mhp.parallel(stmt(t, "sA"), stmt(t, "sA")));
}

TEST(StaticMhp, ReachesThroughCallsAndNesting) {
  const Tier t = build(R"(
    var x;
    fun deep() { sDeep: x = 3; }
    fun mid() { deep(); }
    fun main() {
      cobegin
        { cobegin { sN1: x = 1; } || { mid(); } coend; }
      ||
        { sB: x = 2; }
      coend;
    }
  )");
  const analysis::Mhp mhp = analysis::mhp_from(*t.prog->lowered, *t.info);
  // Nested siblings are parallel; everything in the first branch is
  // parallel with the second branch, including through two calls.
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sN1", "sDeep"), analysis::MhpAnswer::Yes);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sN1", "sB"), analysis::MhpAnswer::Yes);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sDeep", "sB"), analysis::MhpAnswer::Yes);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sN1", "sN1"), analysis::MhpAnswer::No);
}

TEST(StaticMhp, DoallBodyParallelWithItself) {
  const Tier t = build(R"(
    var a; var n = 3;
    fun main() {
      a = alloc(3);
      doall (i = 0 .. n - 1) { sBody: a[i] = i; }
    }
  )");
  const analysis::Mhp mhp = analysis::mhp_from(*t.prog->lowered, *t.info);
  EXPECT_EQ(mhp.parallel(*t.prog->lowered, "sBody", "sBody"), analysis::MhpAnswer::Yes);
}

TEST(StaticMhp, SequentialProgramHasNoPairs) {
  const Tier t = build(R"(
    var x;
    fun main() { sA: x = 1; sB: x = 2; }
  )");
  EXPECT_TRUE(analysis::mhp_from(*t.prog->lowered, *t.info).pairs.empty());
  EXPECT_EQ(t.cands.pairs_total, t.cands.pruned_mhp);
  EXPECT_TRUE(t.cands.candidates.empty());
}

// --- locksets --------------------------------------------------------------

TEST(LockSets, CommonLockSuppressesNamedPair) {
  const Tier t = build(R"(
    var count = 0; var m = 0;
    fun main() {
      cobegin
        { lock(m); sA: count = count + 1; unlock(m); }
      ||
        { lock(m); sB: count = count + 1; unlock(m); }
      coend;
    }
  )");
  expect_invariant(t);
  EXPECT_EQ(t.locks->num_locks(), 1u);
  EXPECT_EQ(t.locks->lock_name(0), "m");
  EXPECT_TRUE(t.locks->deadlock_free());
  EXPECT_TRUE(t.locks->unlocks_safe());
  EXPECT_TRUE(t.cands.candidates.empty());
  const auto* s = suppressed(t, stmt(t, "sA"), stmt(t, "sB"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->lock, "m");
}

TEST(LockSets, HeldThroughCallProtectsCalleeBody) {
  // f's entry set is the intersection over its call sites; both hold m, so
  // the self-parallel f body is protected.
  const Tier t = build(R"(
    var x; var m = 0;
    fun f() { sF: x = x + 1; }
    fun main() {
      cobegin
        { lock(m); f(); unlock(m); }
      ||
        { lock(m); f(); unlock(m); }
      coend;
    }
  )");
  expect_invariant(t);
  EXPECT_TRUE(t.cands.candidates.empty());
  const auto* s = suppressed(t, stmt(t, "sF"), stmt(t, "sF"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->lock, "m");
}

TEST(LockSets, CalleeUnlockKillsCallerMustSet) {
  // rel() may release m, so after the call the callers no longer must-hold
  // it: the sA/sB pair is a candidate, not a suppression.
  const Tier t = build(R"(
    var x; var m = 0;
    fun rel() { unlock(m); }
    fun main() {
      cobegin
        { lock(m); rel(); sA: x = 1; }
      ||
        { lock(m); rel(); sB: x = 2; }
      coend;
    }
  )");
  expect_invariant(t);
  EXPECT_NE(candidate(t, stmt(t, "sA"), stmt(t, "sB")), nullptr);
  EXPECT_EQ(suppressed(t, stmt(t, "sA"), stmt(t, "sB")), nullptr);
}

TEST(LockSets, ConditionalAcquireJoinsByIntersection) {
  const Tier t = build(R"(
    var x; var c; var m = 0;
    fun main() {
      cobegin
        {
          if (c == 1) { lock(m); } else { skip; }
          sA: x = 1;
          if (c == 1) { unlock(m); } else { skip; }
        }
      ||
        { lock(m); sB: x = 2; unlock(m); }
      coend;
    }
  )");
  expect_invariant(t);
  // One path to sA holds nothing, so the must-set is empty there.
  EXPECT_NE(candidate(t, stmt(t, "sA"), stmt(t, "sB")), nullptr);
  EXPECT_EQ(suppressed(t, stmt(t, "sA"), stmt(t, "sB")), nullptr);
}

TEST(LockSets, ForkedChildrenInheritNothing) {
  // Lock ownership is per-process: the parent holding m does not protect
  // its children from each other.
  const Tier t = build(R"(
    var x; var m = 0;
    fun main() {
      lock(m);
      cobegin { sA: x = 1; } || { sB: x = 2; } coend;
      unlock(m);
    }
  )");
  expect_invariant(t);
  EXPECT_NE(candidate(t, stmt(t, "sA"), stmt(t, "sB")), nullptr);
}

TEST(LockSets, LockOrderInversionIsNotDeadlockFree) {
  const Tier t = build(R"(
    var m = 0; var n = 0;
    fun main() {
      cobegin
        { lock(m); lock(n); unlock(n); unlock(m); }
      ||
        { lock(n); lock(m); unlock(m); unlock(n); }
      coend;
    }
  )");
  EXPECT_TRUE(t.locks->pristine());
  EXPECT_TRUE(t.locks->blocking_while_locked());
  EXPECT_FALSE(t.locks->deadlock_free());
}

TEST(LockSets, UnlockWithoutHoldIsNotSafe) {
  const Tier t = build(R"(
    var m = 0;
    fun main() { unlock(m); }
  )");
  EXPECT_TRUE(t.locks->pristine());
  EXPECT_FALSE(t.locks->unlocks_safe());
}

TEST(LockSets, PoisonedLockCellsAreNotPristine) {
  // A nonzero initializer breaks the ownership protocol...
  const Tier bad_init = build(R"(
    var m = 1;
    fun main() { lock(m); unlock(m); }
  )");
  EXPECT_FALSE(bad_init.locks->pristine());
  EXPECT_FALSE(bad_init.locks->deadlock_free());
  // ...and so does an ordinary write to the lock cell.
  const Tier data_write = build(R"(
    var m = 0;
    fun main() { lock(m); unlock(m); m = 0; }
  )");
  EXPECT_FALSE(data_write.locks->pristine());
}

// --- candidates ------------------------------------------------------------

TEST(Candidates, PartialLockFlagsExactlyTheHole) {
  const Tier t = build(R"(
    var count = 0; var extra = 0; var m = 0;
    fun main() {
      cobegin
        { lock(m); sL1: count = count + 1; unlock(m); sU: extra = extra + 1; }
      ||
        { lock(m); sL2: count = count + 1; unlock(m); sV: extra = extra + 1; }
      coend;
    }
  )");
  expect_invariant(t);
  ASSERT_EQ(t.cands.candidates.size(), 1u);
  const analysis::RaceCandidate* c = candidate(t, stmt(t, "sU"), stmt(t, "sV"));
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->write_write);
  EXPECT_TRUE(c->write_read);
  const auto* s = suppressed(t, stmt(t, "sL1"), stmt(t, "sL2"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->lock, "m");
}

TEST(Candidates, RankedWriteWriteFirst) {
  const Tier t = build(R"(
    var x; var y;
    fun main() {
      cobegin
        { sWx: x = 1; sRy: x = y; }
      ||
        { sWx2: x = 2; sWy: y = 1; }
      coend;
    }
  )");
  expect_invariant(t);
  ASSERT_GE(t.cands.candidates.size(), 2u);
  for (std::size_t i = 1; i < t.cands.candidates.size(); ++i) {
    EXPECT_GE(t.cands.candidates[i - 1].score, t.cands.candidates[i].score);
  }
  EXPECT_TRUE(t.cands.candidates.front().write_write);
}

// --- check battery integration --------------------------------------------

constexpr std::string_view kPartialLock = R"(
    var count = 0; var extra = 0; var m = 0;
    fun main() {
      cobegin
        { lock(m); count = count + 1; unlock(m); sU: extra = extra + 1; }
      ||
        { lock(m); count = count + 1; unlock(m); sV: extra = extra + 1; }
      coend;
      sCheck: assert(count == 2);
    }
)";

constexpr std::string_view kAllLocked = R"(
    var a = 0; var b = 0; var ma = 0; var mb = 0;
    fun main() {
      cobegin
        { lock(ma); a = a + 1; unlock(ma); lock(mb); b = b + 1; unlock(mb); }
      ||
        { lock(ma); a = a + 2; unlock(ma); }
      ||
        { lock(mb); b = b + 2; unlock(mb); }
      coend;
    }
)";

struct CheckRun {
  std::unique_ptr<CompiledProgram> prog;
  DiagnosticEngine engine;
  check::CheckSummary summary;
};

CheckRun run_tier(std::string_view source, check::Tier tier,
                  std::uint64_t pair_budget = 50000) {
  CheckRun out;
  out.prog = compile(source);
  check::CheckOptions opts;
  opts.tier = tier;
  opts.pair_budget = pair_budget;
  out.summary = check::run_checks(*out.prog, out.engine, opts);
  return out;
}

std::size_t count_code(const DiagnosticEngine& engine, std::string_view code) {
  std::size_t n = 0;
  for (const Diagnostic& d : engine.all()) n += (d.code == code) ? 1 : 0;
  return n;
}

TEST(CheckTier, StaticNeverExplores) {
  const CheckRun r = run_tier(kPartialLock, check::Tier::Static);
  EXPECT_FALSE(r.summary.explored);
  EXPECT_EQ(r.summary.stats.configs_explored, 0u);
  EXPECT_EQ(r.summary.tier, check::Tier::Static);
  // The candidate surfaces as a "possible" race, the guarded pair as a note.
  EXPECT_GE(count_code(r.engine, "race"), 1u);
  EXPECT_GE(count_code(r.engine, "race-guarded"), 1u);
  for (const Diagnostic& d : r.engine.all()) {
    if (d.code == "race") {
      EXPECT_NE(d.message.find("possible"), std::string::npos) << d.message;
    }
    if (d.code == "race-guarded") {
      EXPECT_NE(d.message.find("lock 'm'"), std::string::npos) << d.message;
    }
  }
  // One candidate survived and stayed undecided.
  EXPECT_EQ(r.summary.stats.candidates, 1u);
  EXPECT_FALSE(r.summary.concrete_exhaustive);
}

TEST(CheckTier, AutoSkipsExplorationWhenStaticDischargesEverything) {
  const CheckRun r = run_tier(kAllLocked, check::Tier::Auto);
  EXPECT_TRUE(r.engine.all().empty()) << r.engine.to_string();
  EXPECT_FALSE(r.summary.explored);
  EXPECT_EQ(r.summary.stats.configs_explored, 0u);
  EXPECT_TRUE(r.summary.concrete_exhaustive);
  EXPECT_EQ(r.summary.stats.candidates, 0u);
  EXPECT_GT(r.summary.stats.pruned_lockset, 0u);
}

TEST(CheckTier, GuardedNotesAreStaticTierOnly) {
  const CheckRun st = run_tier(kAllLocked, check::Tier::Static);
  const CheckRun au = run_tier(kAllLocked, check::Tier::Auto);
  EXPECT_GT(count_code(st.engine, "race-guarded"), 0u);
  EXPECT_EQ(count_code(au.engine, "race-guarded"), 0u);
}

TEST(CheckTier, AutoConfirmsWithDirectedSearch) {
  const CheckRun r = run_tier(kPartialLock, check::Tier::Auto);
  EXPECT_EQ(r.summary.stats.candidates, 1u);
  EXPECT_EQ(r.summary.stats.confirmed, 1u);
  EXPECT_EQ(r.summary.stats.refuted, 0u);
  EXPECT_GT(r.summary.stats.configs_explored, 0u);
  EXPECT_GE(count_code(r.engine, "race"), 1u);
  for (const Diagnostic& d : r.engine.all()) {
    if (d.code != "race") continue;
    EXPECT_EQ(d.message.find("possible"), std::string::npos) << d.message;
    EXPECT_FALSE(d.notes.empty()) << "confirmed race should carry a witness";
  }
}

TEST(CheckTier, AutoMatchesExploreDiagnostics) {
  for (const std::string_view src : {kPartialLock, std::string_view(R"(
    var count = 0;
    fun main() {
      var t1; var t2;
      cobegin
        { sA1: t1 = count; sA2: count = t1 + 1; }
      ||
        { sB1: t2 = count; sB2: count = t2 + 1; }
      coend;
      sCheck: assert(count == 2);
    }
  )")}) {
    const CheckRun ex = run_tier(src, check::Tier::Explore);
    const CheckRun au = run_tier(src, check::Tier::Auto);
    ASSERT_EQ(ex.engine.all().size(), au.engine.all().size());
    for (std::size_t i = 0; i < ex.engine.all().size(); ++i) {
      const Diagnostic& a = ex.engine.all()[i];
      const Diagnostic& b = au.engine.all()[i];
      EXPECT_EQ(a.code, b.code);
      EXPECT_EQ(a.message, b.message);
      EXPECT_EQ(a.span, b.span);
      EXPECT_EQ(a.related_spans, b.related_spans);
    }
  }
}

TEST(CheckTier, PairBudgetExhaustionReportsPossible) {
  const CheckRun r = run_tier(kPartialLock, check::Tier::Auto, /*pair_budget=*/1);
  EXPECT_EQ(r.summary.stats.budget_exhausted, 1u);
  EXPECT_EQ(r.summary.stats.confirmed, 0u);
  EXPECT_FALSE(r.summary.concrete_exhaustive);
  bool possible = false;
  for (const Diagnostic& d : r.engine.all()) {
    if (d.code == "race" && d.message.find("possible") != std::string::npos) possible = true;
  }
  EXPECT_TRUE(possible);
}

TEST(CheckTier, StatsInvariantHoldsAcrossTiers) {
  for (const check::Tier tier :
       {check::Tier::Auto, check::Tier::Static, check::Tier::Explore}) {
    const CheckRun r = run_tier(kPartialLock, tier);
    const check::TierStats& s = r.summary.stats;
    if (tier == check::Tier::Explore) {
      EXPECT_EQ(s.pairs_total, 0u) << "explore tier skips the static pass";
      continue;
    }
    EXPECT_EQ(s.pairs_total, s.pruned_mhp + s.pruned_lockset + s.candidates);
  }
}

// --- agreement with the explorer over the shipped samples -------------------

bool is_sync_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id) {
  const lang::Stmt* s = prog.stmt(stmt_id);
  return s != nullptr &&
         (s->kind() == lang::StmtKind::Lock || s->kind() == lang::StmtKind::Unlock);
}

TEST(TierAgreement, CandidatesCoverExplorerRacesOnAllSamples) {
  const std::filesystem::path dir = COPAR_SAMPLES_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cop") continue;
    std::ifstream in(entry.path());
    std::stringstream src;
    src << in.rdbuf();
    const Tier t = build(src.str());
    std::set<std::pair<std::uint32_t, std::uint32_t>> cand_pairs;
    for (const analysis::RaceCandidate& c : t.cands.candidates) {
      cand_pairs.insert({c.stmt1, c.stmt2});
    }
    std::set<std::pair<std::uint32_t, std::uint32_t>> supp_pairs;
    for (const analysis::SuppressedPair& s : t.cands.suppressed) {
      supp_pairs.insert({s.stmt1, s.stmt2});
    }
    for (const explore::Reduction red :
         {explore::Reduction::Full, explore::Reduction::Stubborn}) {
      explore::ExploreOptions opts;
      opts.reduction = red;
      opts.record_pairs = true;
      opts.max_configs = 300000;
      const explore::ExploreResult res = explore::explore(*t.prog->lowered, opts);
      if (res.truncated) continue;  // unbounded sample: nothing to compare
      ++checked;
      for (const analysis::Anomaly& a : analysis::anomalies_from(res).all) {
        if (is_sync_stmt(*t.prog->lowered, a.stmt1) &&
            is_sync_stmt(*t.prog->lowered, a.stmt2)) {
          continue;  // lock contention, not a data race
        }
        const auto key = std::make_pair(std::min(a.stmt1, a.stmt2),
                                        std::max(a.stmt1, a.stmt2));
        EXPECT_TRUE(cand_pairs.contains(key))
            << entry.path().filename() << ": explorer race "
            << analysis::describe_stmt(*t.prog->lowered, key.first) << " || "
            << analysis::describe_stmt(*t.prog->lowered, key.second)
            << " missing from static candidates";
        EXPECT_FALSE(supp_pairs.contains(key))
            << entry.path().filename() << ": statically suppressed pair is concretely racy";
      }
    }
  }
  EXPECT_GT(checked, 0u) << "no sample completed exploration";
}

}  // namespace
}  // namespace copar
