// Stubborn-set reduction: must preserve the exact set of result
// configurations (the paper's central claim for §2) while shrinking the
// explored space.
#include <gtest/gtest.h>

#include "src/explore/explorer.h"
#include "src/explore/stubborn.h"
#include "src/sem/program.h"

namespace copar::explore {
namespace {

struct BothResults {
  ExploreResult full;
  ExploreResult stubborn;
};

BothResults run_both(std::string_view src) {
  static std::vector<std::unique_ptr<CompiledProgram>> alive;
  alive.push_back(compile(src));
  const sem::LoweredProgram& prog = *alive.back()->lowered;
  ExploreOptions full_opts;
  full_opts.reduction = Reduction::Full;
  ExploreOptions stub_opts;
  stub_opts.reduction = Reduction::Stubborn;
  return BothResults{explore(prog, full_opts), explore(prog, stub_opts)};
}

void expect_same_terminals(const BothResults& r) {
  EXPECT_EQ(r.full.terminal_keys(), r.stubborn.terminal_keys());
  EXPECT_EQ(r.full.deadlock_found, r.stubborn.deadlock_found);
  EXPECT_EQ(r.full.violations, r.stubborn.violations);
  EXPECT_EQ(r.full.faults, r.stubborn.faults);
}

TEST(Stubborn, IndependentThreadsCollapseToOneOrder) {
  const BothResults r = run_both(R"(
    var x; var y; var z;
    fun main() {
      cobegin { x = 1; x = 2; } || { y = 1; y = 2; } || { z = 1; z = 2; } coend;
    }
  )");
  expect_same_terminals(r);
  // Fully independent threads: the reduced space is linear in total actions
  // (init, fork, 6 assigns, join, return = 10), the full space is the
  // product of the three threads' positions.
  EXPECT_EQ(r.stubborn.num_configs, 10u);
  EXPECT_LE(r.stubborn.num_configs, r.full.num_configs / 3);
}

TEST(Stubborn, ConflictingWritesKeepAllOutcomes) {
  const BothResults r = run_both(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminal_int_values("x"), (std::set<std::int64_t>{1, 2}));
}

TEST(Stubborn, ShashaSnirOutcomesPreserved) {
  const BothResults r = run_both(R"(
    var x; var y; var a; var b;
    fun main() {
      cobegin { x = 1; a = y; } || { y = 1; b = x; } coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminals.size(), 3u);
}

TEST(Stubborn, FutureConflictsAreSeen) {
  // The first action of the right branch (t = 1, thread-local... but t is a
  // shared local here) does not conflict with x = 1; the *second* does.
  // A naive next-action-only reduction would lose the outcome where the
  // right branch runs entirely after the left read.
  const BothResults r = run_both(R"(
    var x; var a;
    fun main() {
      var t;
      cobegin { a = x; } || { t = 1; x = t + 1; } coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminal_int_values("a"), (std::set<std::int64_t>{0, 2}));
}

TEST(Stubborn, LockProgramsPreserved) {
  const BothResults r = run_both(R"(
    var m; var x;
    fun main() {
      var t1; var t2;
      cobegin
        { lock(m); t1 = x; x = t1 + 1; unlock(m); }
      ||
        { lock(m); t2 = x; x = t2 + 1; unlock(m); }
      coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminal_int_values("x"), (std::set<std::int64_t>{2}));
}

TEST(Stubborn, DeadlocksPreserved) {
  const BothResults r = run_both(R"(
    var m1; var m2;
    fun main() {
      cobegin
        { lock(m1); lock(m2); unlock(m2); unlock(m1); }
      ||
        { lock(m2); lock(m1); unlock(m1); unlock(m2); }
      coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_TRUE(r.stubborn.deadlock_found);
}

TEST(Stubborn, BusyWaitCycleProvisoKeepsTerminal) {
  // Without the cycle proviso, a reduced exploration could spin in the
  // waiting thread forever and "ignore" the flag writer.
  const BothResults r = run_both(R"(
    var flag; var r;
    fun main() {
      cobegin
        { while (flag == 0) { skip; } r = 1; }
      ||
        { flag = 1; }
      coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminal_int_values("r"), (std::set<std::int64_t>{1}));
}

TEST(Stubborn, CallsWithSideEffectsPreserved) {
  const BothResults r = run_both(R"(
    var x; var a;
    fun bump() { x = x + 1; }
    fun main() {
      cobegin { bump(); } || { a = x; } coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminal_int_values("a"), (std::set<std::int64_t>{0, 1}));
}

TEST(Stubborn, PointerAliasingPreserved) {
  const BothResults r = run_both(R"(
    var p; var q; var a;
    fun main() {
      p = alloc(1);
      q = p;
      cobegin { *p = 1; } || { a = *q; } coend;
    }
  )");
  expect_same_terminals(r);
  EXPECT_EQ(r.stubborn.terminal_int_values("a"), (std::set<std::int64_t>{0, 1}));
}

TEST(Stubborn, NestedCobeginPreserved) {
  const BothResults r = run_both(R"(
    var x;
    fun main() {
      cobegin
        { cobegin { x = x + 1; } || { x = x + 10; } coend; }
      ||
        { x = 100; }
      coend;
    }
  )");
  expect_same_terminals(r);
}

TEST(Stubborn, AsymmetricReadersAndWriter) {
  const BothResults r = run_both(R"(
    var x; var a; var b;
    fun main() {
      cobegin { a = x; } || { b = x; } || { x = 7; } coend;
    }
  )");
  expect_same_terminals(r);
  // All four read/read-order outcomes: (0,0),(0,7),(7,0),(7,7).
  EXPECT_EQ(r.full.terminals.size(), 4u);
}

TEST(Stubborn, ReductionStatisticsExposed) {
  const BothResults r = run_both(R"(
    var x; var y;
    fun main() { cobegin { x = 1; x = 2; } || { y = 1; y = 2; } coend; }
  )");
  EXPECT_GT(r.stubborn.stats.get("stubborn_steps"), 0u);
  EXPECT_GT(r.stubborn.stats.get("stubborn_singletons"), 0u);
}

TEST(Stubborn, ActionsConflictHelper) {
  auto prog = compile(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; }
  )");
  sem::Configuration cfg = sem::Configuration::initial(*prog->lowered);
  cfg = sem::apply_action(cfg, 0);  // fork
  const sem::ActionInfo a = sem::action_info(cfg, 1);
  const sem::ActionInfo b = sem::action_info(cfg, 2);
  EXPECT_TRUE(actions_conflict(a, b));  // write/write on x
}

TEST(Stubborn, NonConflictingActionsDoNotConflict) {
  auto prog = compile(R"(
    var x; var y;
    fun main() { cobegin { x = 1; } || { y = 2; } coend; }
  )");
  sem::Configuration cfg = sem::Configuration::initial(*prog->lowered);
  cfg = sem::apply_action(cfg, 0);
  EXPECT_FALSE(actions_conflict(sem::action_info(cfg, 1), sem::action_info(cfg, 2)));
}

}  // namespace
}  // namespace copar::explore
