#include <gtest/gtest.h>

#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace copar::lang {
namespace {

std::unique_ptr<Module> ok(std::string_view src) {
  DiagnosticEngine diags;
  auto m = parse_program(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return m;
}

void bad(std::string_view src, std::string_view needle) {
  DiagnosticEngine diags;
  (void)parse_program(src, diags);
  ASSERT_TRUE(diags.has_errors()) << "expected parse error for: " << src;
  EXPECT_NE(diags.to_string().find(needle), std::string::npos)
      << "diagnostics were:\n" << diags.to_string();
}

TEST(Parser, EmptyModule) {
  auto m = ok("");
  EXPECT_TRUE(m->globals().empty());
  EXPECT_TRUE(m->functions().empty());
}

TEST(Parser, GlobalsWithAndWithoutInit) {
  auto m = ok("var a; var b = 3;");
  ASSERT_EQ(m->globals().size(), 2u);
  EXPECT_EQ(m->globals()[0].init, nullptr);
  ASSERT_NE(m->globals()[1].init, nullptr);
  EXPECT_EQ(m->globals()[1].init->kind(), ExprKind::IntLit);
}

TEST(Parser, FunctionWithParams) {
  auto m = ok("fun f(a, b, c) { return a; }");
  const FunDecl* f = m->find_function("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->params().size(), 3u);
}

TEST(Parser, AssignmentForms) {
  auto m = ok(R"(
    var x; var p;
    fun main() {
      x = 1;
      *p = 2;
      p[3] = 4;
    }
  )");
  const auto& body = m->find_function("main")->body();
  ASSERT_EQ(body.stmts().size(), 3u);
  for (const auto& s : body.stmts()) EXPECT_EQ(s->kind(), StmtKind::Assign);
}

TEST(Parser, AllocOnlyAsWholeRhs) {
  auto m = ok("var p; fun main() { p = alloc(2); }");
  EXPECT_EQ(m->find_function("main")->body().stmts()[0]->kind(), StmtKind::Alloc);
  bad("var p; fun main() { p = alloc(2) + 1; }", "alloc");
  bad("var p; fun main() { p = 1 + alloc(2); }", "alloc");
}

TEST(Parser, VarInitDesugarsToDeclPlusAssign) {
  auto m = ok("fun main() { var x = 5; }");
  const auto& stmts = m->find_function("main")->body().stmts();
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0]->kind(), StmtKind::VarDecl);
  EXPECT_EQ(stmts[1]->kind(), StmtKind::Assign);
}

TEST(Parser, VarInitWithAllocAndCall) {
  auto m = ok(R"(
    fun f() { return 1; }
    fun main() { var p = alloc(1); var x = f(); }
  )");
  const auto& stmts = m->find_function("main")->body().stmts();
  ASSERT_EQ(stmts.size(), 4u);
  EXPECT_EQ(stmts[1]->kind(), StmtKind::Alloc);
  EXPECT_EQ(stmts[3]->kind(), StmtKind::Call);
}

TEST(Parser, CallStatements) {
  auto m = ok(R"(
    var x;
    fun f(a) { return a; }
    fun main() { f(1); x = f(2); }
  )");
  const auto& stmts = m->find_function("main")->body().stmts();
  ASSERT_EQ(stmts.size(), 2u);
  const auto& bare = stmt_cast<CallStmt>(*stmts[0]);
  EXPECT_EQ(bare.dst(), nullptr);
  const auto& with_dst = stmt_cast<CallStmt>(*stmts[1]);
  ASSERT_NE(with_dst.dst(), nullptr);
  EXPECT_EQ(with_dst.args().size(), 1u);
}

TEST(Parser, CallsBannedInsideExpressions) {
  bad("var x; fun f() { return 1; } fun main() { x = f() + 1; }", "expected");
  bad("var x; fun f() { return 1; } fun main() { x = 1 + f(); }", "call target");
}

TEST(Parser, CobeginBranches) {
  auto m = ok(R"(
    var x; var y;
    fun main() {
      cobegin { x = 1; } || y = 2; || { skip; skip; } coend;
    }
  )");
  const auto& cb = stmt_cast<CobeginStmt>(*m->find_function("main")->body().stmts()[0]);
  EXPECT_EQ(cb.branches().size(), 3u);
}

TEST(Parser, NestedCobegin) {
  auto m = ok(R"(
    var x;
    fun main() {
      cobegin { cobegin x = 1; || x = 2; coend; } || x = 3; coend;
    }
  )");
  EXPECT_EQ(m->find_function("main")->body().stmts()[0]->kind(), StmtKind::Cobegin);
}

TEST(Parser, StatementLabels) {
  auto m = ok(R"(
    var x; var y;
    fun main() {
      s1: x = 1;
      s2: y = x;
    }
  )");
  ASSERT_NE(m->find_labeled("s1"), nullptr);
  ASSERT_NE(m->find_labeled("s2"), nullptr);
  EXPECT_EQ(m->find_labeled("s1")->kind(), StmtKind::Assign);
  EXPECT_EQ(m->find_labeled("nope"), nullptr);
}

TEST(Parser, IfElseWhile) {
  auto m = ok(R"(
    var x;
    fun main() {
      if (x > 0) { x = 1; } else x = 2;
      while (x < 10) x = x + 1;
    }
  )");
  const auto& stmts = m->find_function("main")->body().stmts();
  EXPECT_EQ(stmts[0]->kind(), StmtKind::If);
  EXPECT_EQ(stmts[1]->kind(), StmtKind::While);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto m = ok("var x; fun main() { x = 1 + 2 * 3; }");
  const auto& a = stmt_cast<AssignStmt>(*m->find_function("main")->body().stmts()[0]);
  const auto& add = expr_cast<Binary>(a.rhs());
  EXPECT_EQ(add.op(), BinOp::Add);
  EXPECT_EQ(expr_cast<Binary>(add.rhs()).op(), BinOp::Mul);
}

TEST(Parser, PrecedenceCmpOverAnd) {
  auto m = ok("var x; fun main() { x = 1 < 2 and 3 < 4; }");
  const auto& a = stmt_cast<AssignStmt>(*m->find_function("main")->body().stmts()[0]);
  EXPECT_EQ(expr_cast<Binary>(a.rhs()).op(), BinOp::And);
}

TEST(Parser, UnaryOperators) {
  auto m = ok("var x; var p; fun main() { x = -x; x = not x; x = *p; p = &x; }");
  const auto& stmts = m->find_function("main")->body().stmts();
  EXPECT_EQ(stmt_cast<AssignStmt>(*stmts[0]).rhs().kind(), ExprKind::Unary);
  EXPECT_EQ(stmt_cast<AssignStmt>(*stmts[1]).rhs().kind(), ExprKind::Unary);
  EXPECT_EQ(stmt_cast<AssignStmt>(*stmts[2]).rhs().kind(), ExprKind::Deref);
  EXPECT_EQ(stmt_cast<AssignStmt>(*stmts[3]).rhs().kind(), ExprKind::AddrOf);
}

TEST(Parser, FunctionLiteral) {
  auto m = ok("var f; fun main() { f = fun (a) { return a; }; }");
  const auto& a = stmt_cast<AssignStmt>(*m->find_function("main")->body().stmts()[0]);
  EXPECT_EQ(a.rhs().kind(), ExprKind::FunLit);
  // The lambda is registered in the module's function list.
  EXPECT_EQ(m->functions().size(), 2u);
}

TEST(Parser, LockUnlockSkipAssert) {
  auto m = ok(R"(
    var m1; var x;
    fun main() {
      lock(m1);
      x = 1;
      unlock(m1);
      skip;
      assert(x == 1);
    }
  )");
  const auto& stmts = m->find_function("main")->body().stmts();
  EXPECT_EQ(stmts[0]->kind(), StmtKind::Lock);
  EXPECT_EQ(stmts[2]->kind(), StmtKind::Unlock);
  EXPECT_EQ(stmts[3]->kind(), StmtKind::Skip);
  EXPECT_EQ(stmts[4]->kind(), StmtKind::Assert);
}

TEST(Parser, LockTargetMustBeLvalue) {
  bad("fun main() { lock(1 + 2); }", "lvalue");
}

TEST(Parser, AssignTargetMustBeLvalue) {
  bad("var x; fun main() { (x + 1) = 2; }", "lvalue");
}

TEST(Parser, AddrOfRequiresLvalue) {
  bad("var p; fun main() { p = &(1 + 2); }", "lvalue");
}

TEST(Parser, MissingSemicolonReported) {
  bad("var x; fun main() { x = 1 }", "';'");
}

TEST(Parser, PointerArithmeticExpressions) {
  auto m = ok("var p; var x; fun main() { x = *(p + 1); }");
  EXPECT_EQ(m->find_function("main")->body().stmts().size(), 1u);
}

}  // namespace
}  // namespace copar::lang
