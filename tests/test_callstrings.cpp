// k-limited abstract procedure (call) strings: the context-sensitivity knob
// of the abstract semantics. k = 0 merges all call sites of a function
// (0-CFA); k >= 1 keeps distinct call sites' return flows apart.
#include <gtest/gtest.h>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/common.h"
#include "src/sem/program.h"

namespace copar::absem {
namespace {

using absdom::FlatInt;

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

AbsResult<FlatInt> run_k(const CompiledProgram& p, std::size_t k) {
  AbsOptions opts;
  opts.call_string_k = k;
  return AbsExplorer<FlatInt>(*p.lowered, opts).run();
}

/// The classic context-sensitivity example: an identity function called
/// from two sites with different constants.
const char* kTwoSites = R"(
  var a; var b;
  fun id(x) { return x; }
  fun main() {
    s1: a = id(1);
    s2: b = id(2);
    sQ: assert(a == 1);
    sR: assert(b == 2);
  }
)";

TEST(CallStrings, ZeroCfaMergesCallSites) {
  const auto& p = compiled(kTwoSites);
  const auto r = run_k(p, 0);
  // Both call sites' arguments join in id's frame: the returned value is ⊤
  // at both destinations, so neither assert discharges.
  EXPECT_EQ(r.may_fail_asserts.size(), 2u);
}

TEST(CallStrings, K1SeparatesCallSites) {
  const auto& p = compiled(kTwoSites);
  const auto r = run_k(p, 1);
  // With one call-string element, id's analysis runs per site: a = 1 and
  // b = 2 are recovered exactly.
  EXPECT_TRUE(r.may_fail_asserts.empty()) << r.may_fail_asserts.size();
}

TEST(CallStrings, K1CostsMoreStates) {
  const auto& p = compiled(kTwoSites);
  const auto r0 = run_k(p, 0);
  const auto r1 = run_k(p, 1);
  EXPECT_GE(r1.num_states, r0.num_states);  // precision is paid in states
}

TEST(CallStrings, NestedCallsNeedDepth) {
  const auto& p = compiled(R"(
    var a; var b;
    fun inner(x) { return x; }
    fun outer(y) { var t; t = inner(y); return t; }
    fun main() {
      a = outer(1);
      b = outer(2);
      sQ: assert(a == 1);
      sR: assert(b == 2);
    }
  )");
  // k = 1 distinguishes inner's callers (one site in outer) but merges
  // outer's two contexts at that shared site — the values still mix.
  const auto r1 = run_k(p, 1);
  EXPECT_FALSE(r1.may_fail_asserts.empty());
  // k = 2 tracks [main-site, outer-site] pairs: exact.
  const auto r2 = run_k(p, 2);
  EXPECT_TRUE(r2.may_fail_asserts.empty());
}

TEST(CallStrings, RecursionStaysFinite) {
  const auto& p = compiled(R"(
    var r;
    fun down(n) {
      var t;
      if (n <= 0) { return 0; }
      t = down(n - 1);
      return t;
    }
    fun main() { r = down(100); }
  )");
  for (std::size_t k : {0u, 1u, 2u, 3u}) {
    const auto r = run_k(p, k);
    EXPECT_FALSE(r.truncated) << "k=" << k;
    EXPECT_GT(r.num_states, 0u);
  }
}

TEST(CallStrings, ThreadsInheritCallContext) {
  const auto& p = compiled(R"(
    var a;
    fun spawner(v) {
      cobegin { a = v; } || skip; coend;
      return 0;
    }
    fun main() {
      var t;
      t = spawner(7);
      sQ: assert(a == 7);
    }
  )");
  const auto r = run_k(p, 1);
  EXPECT_TRUE(r.may_fail_asserts.empty());
}

TEST(CallStrings, MhpUnaffectedBySensitivity) {
  // Context sensitivity refines values, not concurrency: the MHP relation
  // at k = 1 must still cover the k = 0 relation's concrete content (here:
  // both are supersets of the concrete pairs; we check k=1 ⊇ concrete via
  // the standard program).
  const auto& p = compiled(R"(
    var x; var y;
    fun touch(v) { x = v; }
    fun main() {
      cobegin { sA: touch(1); } || { sB: y = x; } coend;
    }
  )");
  const auto r1 = run_k(p, 1);
  const auto sa = analysis::labeled_stmt(*p.lowered, "sA");
  const auto sb = analysis::labeled_stmt(*p.lowered, "sB");
  ASSERT_TRUE(sa && sb);
  EXPECT_TRUE(r1.mhp.contains({std::min(*sa, *sb), std::max(*sa, *sb)}));
}

}  // namespace
}  // namespace copar::absem
