// Parallel-safe dead-store detection: the analysis must find genuinely dead
// stores AND refuse the one the paper's opening example warns about — a
// store only a sibling thread observes.
#include <gtest/gtest.h>

#include "src/analysis/common.h"
#include "src/analysis/deadstore.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace copar::analysis {
namespace {

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

std::uint32_t sid(const CompiledProgram& p, std::string_view label) {
  auto id = labeled_stmt(*p.lowered, label);
  EXPECT_TRUE(id.has_value()) << "no label " << label;
  return id.value_or(0);
}

TEST(DeadStore, OverwrittenLocalDetected) {
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var t;
      sDead: t = 1;
      t = 2;
      r = t;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_TRUE(ds.is_dead(sid(p, "sDead")));
}

TEST(DeadStore, NeverReadLocalDetected) {
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var scratch;
      sDead: scratch = 42;
      r = 1;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_TRUE(ds.is_dead(sid(p, "sDead")));
}

TEST(DeadStore, ReadLaterIsLive) {
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var t;
      sLive: t = 1;
      r = t + 1;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sLive")));
}

TEST(DeadStore, OverwrittenGlobalDetected) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      sDead: x = 1;
      x = 2;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_TRUE(ds.is_dead(sid(p, "sDead")));
}

TEST(DeadStore, FinalGlobalStoreIsLive) {
  // Observable at termination: never dead.
  const auto& p = compiled(R"(
    var x;
    fun main() { sLast: x = 2; }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sLast")));
}

TEST(DeadStore, BusyWaitFlagMustSurvive) {
  // THE paper example: the setter thread never reads s, so a sequential
  // analysis calls `s = 1` dead — removing it makes the sibling spin
  // forever. The parallel-safe analysis keeps it.
  const auto& p = compiled(workload::busy_wait_flag());
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sSet")));
}

TEST(DeadStore, SiblingReadLocalMustSurvive) {
  // Same shape with a shared *local* of main.
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var flag;
      cobegin
        { sSet: flag = 1; }
      ||
        { while (flag == 0) { skip; } r = 1; }
      coend;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sSet")));
}

TEST(DeadStore, AddressTakenLocalNeverReported) {
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var t; var q;
      q = &t;
      sPtr: t = 5;   // read back through *q: not dead
      r = *q;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sPtr")));
}

TEST(DeadStore, ValuePassedToCalleeIsLive) {
  const auto& p = compiled(R"(
    var r;
    fun use(a) { r = a; }
    fun main() {
      var t;
      sLive: t = 3;
      use(t);
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sLive")));
}

TEST(DeadStore, BranchMergeKeepsConditionallyReadStore) {
  const auto& p = compiled(R"(
    var r; var c;
    fun main() {
      var t;
      sMaybe: t = 1;
      if (c > 0) { r = t; }
      t = 2;
      r = r + t;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sMaybe")));  // read on the true edge
}

TEST(DeadStore, LoopCarriedStoreIsLive) {
  const auto& p = compiled(R"(
    var r;
    fun main() {
      var acc; var i;
      sInit: acc = 0;
      i = 0;
      while (i < 3) { acc = acc + i; i = i + 1; }
      r = acc;
    }
  )");
  const DeadStores ds = find_dead_stores(*p.lowered);
  EXPECT_FALSE(ds.is_dead(sid(p, "sInit")));
}

}  // namespace
}  // namespace copar::analysis
